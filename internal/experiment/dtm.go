package experiment

import (
	"context"
	"fmt"

	"cmppower/internal/cmp"
	"cmppower/internal/dvfs"
	"cmppower/internal/phys"
	"cmppower/internal/splash"
	"cmppower/internal/thermal"
)

// DTMConfig parameterizes the dynamic thermal-management controller: a
// reactive governor that watches the (possibly faulty) on-die temperature
// sensors at every activity interval and throttles the chip-wide DVFS
// ladder with hysteresis so the die never silently violates MaxDieTempC.
//
// This is the production-realistic regime the paper assumes away: the
// paper's §3.3 renormalization *defines* the envelope so the hottest
// microbenchmark sits exactly at 100 °C; overclocked or mispredicted
// operating points can exceed it, and the DTM controller is what degrades
// the run gracefully instead of letting the model report an out-of-spec
// temperature as if it were sustainable.
type DTMConfig struct {
	// TripC is the emergency threshold on the hottest sensor reading.
	// The default sits a guard band below phys.MaxDieTempC so one interval
	// of thermal overshoot stays inside the envelope.
	TripC float64
	// HysteresisC is the re-arm band: the controller only steps back up
	// once the hottest reading falls below TripC - HysteresisC, preventing
	// throttle/unthrottle ping-pong at the threshold.
	HysteresisC float64
	// StepDown is how many ladder rungs an emergency drops (≥1).
	StepDown int
	// Intervals is how many activity intervals the run is split into for
	// the controller's decision loop.
	Intervals int
	// TimeDilation stretches each interval's wall-clock duration as seen
	// by the thermal network (the same device as Rig.Transient: scaled
	// workloads run for milliseconds while die time constants are tens of
	// milliseconds; dilation models the program phase repeating).
	TimeDilation float64
}

// DefaultDTMConfig returns the standard controller: trip 4 °C under the
// die limit, 5 °C of hysteresis, two rungs per emergency, 64 decision
// intervals.
func DefaultDTMConfig() DTMConfig {
	return DTMConfig{
		TripC:        phys.MaxDieTempC - 4,
		HysteresisC:  5,
		StepDown:     2,
		Intervals:    64,
		TimeDilation: 2000,
	}
}

// Validate checks the controller parameters.
func (c DTMConfig) Validate() error {
	switch {
	case c.TripC <= phys.AmbientTempC:
		return fmt.Errorf("experiment: DTM trip %g °C not above ambient %g °C", c.TripC, phys.AmbientTempC)
	case c.HysteresisC < 0:
		return fmt.Errorf("experiment: negative DTM hysteresis %g", c.HysteresisC)
	case c.StepDown < 1:
		return fmt.Errorf("experiment: DTM step-down %d < 1", c.StepDown)
	case c.Intervals < 2:
		return fmt.Errorf("experiment: DTM intervals %d < 2", c.Intervals)
	case c.TimeDilation <= 0:
		return fmt.Errorf("experiment: non-positive DTM time dilation %g", c.TimeDilation)
	}
	return nil
}

// DTMStats are one run's thermal-management metrics.
type DTMStats struct {
	// Emergencies counts trip events (hottest sensor ≥ TripC).
	Emergencies int
	// Transitions counts DVFS requests the governor latched (throttle-downs
	// and recovery steps that took effect).
	Transitions int
	// FailedTransitions counts DVFS requests dropped by fault injection.
	FailedTransitions int
	// ThrottleResidency is the fraction of the run's wall-clock time spent
	// below the requested operating point.
	ThrottleResidency float64
	// PerfLossFrac is the run-time inflation caused by throttling:
	// (throttled duration - nominal duration) / nominal duration.
	PerfLossFrac float64
	// PeakReadingC is the hottest sensor reading observed (what the
	// controller acted on — includes injected sensor faults).
	PeakReadingC float64
	// PeakTempC is the hottest *true* model temperature reached, i.e. the
	// physical outcome the controller is judged on.
	PeakTempC float64
	// FloorHit reports the controller ran out of ladder below it at least
	// once while the die was still above the trip point.
	FloorHit bool
	// FinalPoint is the operating point in effect when the run ended.
	FinalPoint dvfs.OperatingPoint
}

// DTMSummary aggregates DTMStats over every run of a scenario.
type DTMSummary struct {
	Runs                 int
	Emergencies          int
	FailedTransitions    int
	MaxThrottleResidency float64
	MaxPerfLossFrac      float64
	PeakReadingC         float64
	PeakTempC            float64
}

// summarizeDTM folds the per-measurement controller stats of ms (entries
// without stats are skipped).
func summarizeDTM(ms []*Measurement) *DTMSummary {
	s := &DTMSummary{}
	for _, m := range ms {
		if m == nil || m.DTM == nil {
			continue
		}
		s.Runs++
		s.Emergencies += m.DTM.Emergencies
		s.FailedTransitions += m.DTM.FailedTransitions
		if m.DTM.ThrottleResidency > s.MaxThrottleResidency {
			s.MaxThrottleResidency = m.DTM.ThrottleResidency
		}
		if m.DTM.PerfLossFrac > s.MaxPerfLossFrac {
			s.MaxPerfLossFrac = m.DTM.PerfLossFrac
		}
		if m.DTM.PeakReadingC > s.PeakReadingC {
			s.PeakReadingC = m.DTM.PeakReadingC
		}
		if m.DTM.PeakTempC > s.PeakTempC {
			s.PeakTempC = m.DTM.PeakTempC
		}
	}
	return s
}

// stepDownFrom returns the ladder point `rungs` steps below freq (ladder
// floor when the walk runs out).
func stepDownFrom(t *dvfs.Table, freq float64, rungs int) dvfs.OperatingPoint {
	p := t.Quantize(freq)
	if p.Freq >= freq {
		// freq sat on (or below) a rung: Quantize was not a step down yet.
		rungs++
	}
	for i := 1; i < rungs; i++ {
		next := t.Quantize(p.Freq * (1 - 1e-9))
		if next.Freq >= p.Freq {
			break // floor
		}
		p = next
	}
	if p.Freq >= freq {
		p = t.Min()
	}
	return p
}

// runDTM re-simulates app with interval activity sampling and replays the
// intervals through the transient thermal network under the DTM
// controller. The controller reads the die through the rig's (possibly
// faulty) sensors and requests DVFS transitions that may themselves fail;
// per-interval power is re-evaluated at the throttled operating point and
// the interval's wall-clock duration stretches accordingly.
//
// The replay approximates mid-run frequency changes at interval
// granularity: each interval's cycle count is taken from the fixed-point
// run at the requested operating point, and throttling dilates the time
// (and scales the power) those cycles take. At this fidelity level —
// activity-counter power over an RC network — that is the same
// approximation the paper itself makes when it re-simulates profiled
// workloads at scaled operating points.
func (r *Rig) runDTM(ctx context.Context, app splash.App, n int, req dvfs.OperatingPoint, runCycles float64, seed uint64) (*DTMStats, error) {
	if r.Domains != nil && r.Domains.Len() > 1 {
		// Multi-island chips govern each DVFS domain independently; the
		// single-domain (and legacy) case continues through the chip-wide
		// controller below, verbatim — pinned by
		// TestDTMSingleDomainMatchesChipWide.
		return r.runDTMDomains(ctx, app, n, req, runCycles, seed)
	}
	dc := *r.DTM
	if dc == (DTMConfig{}) {
		dc = DefaultDTMConfig()
	}
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	cfg := r.runConfig(ctx, app, n, req, seed)
	cfg.SampleCycles = runCycles / float64(dc.Intervals)
	if cfg.SampleCycles < 1 {
		cfg.SampleCycles = 1
	}
	prog := app.Program(r.Scale)
	if r.fork != nil && r.memoizable() {
		// The DTM re-simulation runs the exact column the main run just
		// recorded (or replayed), so it forks from the same checkpoint:
		// the event logs are identical whether or not the run samples.
		prog = r.fork.program(app, r.Scale)
		if cp := r.fork.peek(forkKey{app: app.Name, n: n, seed: seed, scale: r.Scale}); cp != nil &&
			cp.CompatibleWith(prog, n, seed) == nil {
			cfg.Replay = cp
			r.Obs.VolatileCounter("sweep_fork_hits").Add(1)
			r.Obs.VolatileHistogram("sweep_fork_distance_rungs", forkDistanceBounds).
				Observe(rungDistance(r.Table, cp.Point(), req))
		}
	}
	res, err := cmp.Run(prog, cfg)
	if err != nil {
		return nil, err
	}
	if len(res.Samples) == 0 {
		return nil, fmt.Errorf("experiment: DTM run of %s/%d produced no samples", app.Name, n)
	}

	var sensors thermal.SensorReader
	var transitions dvfs.TransitionFault
	if r.Faults != nil {
		sensors, transitions = r.Faults, r.Faults
	}
	governor := &dvfs.Setting{Point: req, Nominal: req}
	state := r.TM.NewTransientState()
	st := &DTMStats{FinalPoint: req}
	var totalSec, nominalSec, throttledSec float64
	for _, s := range res.Samples {
		cur := governor.Point
		cycles := s.EndCycle - s.StartCycle
		realDt := cycles / cur.Freq
		nominalSec += cycles / req.Freq
		totalSec += realDt
		if cur.Freq < req.Freq {
			throttledSec += realDt
		}
		dyn, err := r.Meter.DynamicBlockPower(r.FP, s.Activity, realDt, int64(cycles)+1, cur, n)
		if err != nil {
			return nil, err
		}
		// Static power from the block temperatures at the interval start
		// (explicit leakage coupling, as in Rig.Transient).
		total := make([]float64, len(dyn))
		for i := range dyn {
			frac := r.Meter.StaticFraction(cur.Volt, phys.Clamp(state.Block[i], phys.AmbientTempC, 120))
			total[i] = dyn[i] * (1 + frac)
		}
		if err := r.TM.TransientStep(state, total, realDt*dc.TimeDilation); err != nil {
			return nil, err
		}
		if truePeak := thermal.Peak(state.Block); truePeak > st.PeakTempC {
			st.PeakTempC = truePeak
		}
		reading := thermal.Peak(thermal.Sense(state.Block, sensors))
		if reading > st.PeakReadingC {
			st.PeakReadingC = reading
		}
		switch {
		case reading >= dc.TripC:
			// Thermal emergency: throttle down the ladder.
			st.Emergencies++
			target := stepDownFrom(r.Table, cur.Freq, dc.StepDown)
			if target.Freq >= cur.Freq {
				st.FloorHit = true
				break
			}
			if _, ok := governor.Request(target, transitions); ok {
				st.Transitions++
			} else {
				st.FailedTransitions++
			}
		case reading < dc.TripC-dc.HysteresisC && cur.Freq < req.Freq:
			// Cooled down: recover one rung toward the requested point.
			target := r.Table.StepAbove(cur.Freq * (1 + 1e-9))
			if target.Freq > req.Freq {
				target = req
			}
			if _, ok := governor.Request(target, transitions); ok {
				st.Transitions++
			} else {
				st.FailedTransitions++
			}
		}
	}
	if totalSec > 0 {
		st.ThrottleResidency = throttledSec / totalSec
	}
	if nominalSec > 0 {
		st.PerfLossFrac = totalSec/nominalSec - 1
	}
	st.FinalPoint = governor.Point
	return st, nil
}
