package experiment

import (
	"testing"

	"cmppower/internal/faults"
	"cmppower/internal/splash"
	"cmppower/internal/surrogate"
)

// TestSurrogateFeeding: clean runs train the attached store; fault- and
// DTM-perturbed runs must not (they don't measure the pure simulator).
func TestSurrogateFeeding(t *testing.T) {
	newRig := func(t *testing.T) (*Rig, splash.App) {
		t.Helper()
		rig, err := NewRig(0.05)
		if err != nil {
			t.Fatal(err)
		}
		rig.Surrogate = surrogate.NewStore(surrogate.Options{})
		app, err := splash.ByName("FFT")
		if err != nil {
			t.Fatal(err)
		}
		return rig, app
	}

	t.Run("clean runs feed", func(t *testing.T) {
		rig, app := newRig(t)
		nom := rig.Table.Nominal()
		for _, n := range []int{1, 2} {
			if _, err := rig.RunAppCtx(t.Context(), app, n, nom); err != nil {
				t.Fatal(err)
			}
		}
		key := rig.SurrogateKey("FFT")
		got := rig.Surrogate.Samples(key)
		if len(got) != 2 {
			t.Fatalf("store holds %d samples after 2 clean runs, want 2", len(got))
		}
		for _, s := range got {
			if s.Freq != nom.Freq || s.Volt != nom.Volt || s.Seconds <= 0 ||
				s.PowerW <= 0 || s.DynW+s.StaticW != s.PowerW {
				t.Errorf("fed sample inconsistent with the measurement: %+v", s)
			}
		}
		// Clones share the store: a clone's run lands in the same bucket.
		clone := rig.Clone()
		if _, err := clone.RunAppCtx(t.Context(), app, 4, nom); err != nil {
			t.Fatal(err)
		}
		if got := rig.Surrogate.Samples(key); len(got) != 3 {
			t.Fatalf("store holds %d samples after a clone run, want 3", len(got))
		}
	})

	t.Run("fault-injected runs do not feed", func(t *testing.T) {
		rig, app := newRig(t)
		inj, err := faults.New(faults.Config{Seed: 3, SensorNoiseSigmaC: 4})
		if err != nil {
			t.Fatal(err)
		}
		rig.Faults = inj
		if _, err := rig.RunAppCtx(t.Context(), app, 1, rig.Table.Nominal()); err != nil {
			t.Fatal(err)
		}
		if got := rig.Surrogate.Samples(rig.SurrogateKey("FFT")); len(got) != 0 {
			t.Fatalf("fault-injected run fed %d samples, want 0", len(got))
		}
	})

	t.Run("DTM runs do not feed", func(t *testing.T) {
		rig, app := newRig(t)
		dtm := DefaultDTMConfig()
		rig.DTM = &dtm
		if _, err := rig.RunAppCtx(t.Context(), app, 1, rig.Table.Nominal()); err != nil {
			t.Fatal(err)
		}
		if got := rig.Surrogate.Samples(rig.SurrogateKey("FFT")); len(got) != 0 {
			t.Fatalf("DTM run fed %d samples, want 0", len(got))
		}
	})

	t.Run("memo hits feed once per simulation", func(t *testing.T) {
		rig, app := newRig(t)
		rig.EnableMemo()
		nom := rig.Table.Nominal()
		for i := 0; i < 3; i++ {
			if _, err := rig.RunAppCtx(t.Context(), app, 1, nom); err != nil {
				t.Fatal(err)
			}
		}
		got := rig.Surrogate.Samples(rig.SurrogateKey("FFT"))
		if len(got) != 1 {
			t.Fatalf("3 memoized repeats fed %d samples, want 1 (only the real simulation)", len(got))
		}
	})
}
