package experiment

import (
	"math"
	"testing"
)

func TestClassifyClasses(t *testing.T) {
	// Classification needs steady-state behavior: at tiny scales cold
	// misses dominate every app.
	rig, err := NewRig(0.6)
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := rig.Classify(app(t, "FMM"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if fmm.Class != ComputeBound {
		t.Errorf("FMM classified %s (compute %.2f, mem %.2f)", fmm.Class, fmm.ComputeShare, fmm.MemShare)
	}
	radix, err := rig.Classify(app(t, "Radix"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if radix.Class != MemoryBound {
		t.Errorf("Radix classified %s (compute %.2f, mem %.2f)", radix.Class, radix.ComputeShare, radix.MemShare)
	}
	if radix.CPI <= fmm.CPI {
		t.Errorf("Radix CPI %g should exceed FMM %g", radix.CPI, fmm.CPI)
	}
}

func TestClassifySharesSumBelowOne(t *testing.T) {
	rig := testRig(t)
	for _, name := range []string{"Barnes", "Ocean", "Volrend"} {
		st, err := rig.Classify(app(t, name), 4)
		if err != nil {
			t.Fatal(err)
		}
		sum := st.ComputeShare + st.MemShare + st.BranchShare + st.FetchShare + st.IdleShare
		if sum < 0.5 || sum > 1.05 {
			t.Errorf("%s: shares sum to %g", name, sum)
		}
		for _, s := range []float64{st.ComputeShare, st.MemShare, st.BranchShare, st.FetchShare, st.IdleShare} {
			if s < 0 || math.IsNaN(s) {
				t.Errorf("%s: bad share %g", name, s)
			}
		}
	}
}

func TestClassifyIdleGrowsWithImbalance(t *testing.T) {
	rig := testRig(t)
	vol1, err := rig.Classify(app(t, "Volrend"), 1)
	if err != nil {
		t.Fatal(err)
	}
	vol8, err := rig.Classify(app(t, "Volrend"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if vol8.IdleShare <= vol1.IdleShare {
		t.Errorf("imbalanced app idle share should grow with N: %g vs %g",
			vol8.IdleShare, vol1.IdleShare)
	}
}

func TestClassifyValidation(t *testing.T) {
	rig := testRig(t)
	if _, err := rig.Classify(app(t, "LU"), 6); err == nil {
		t.Error("accepted invalid core count")
	}
}

func TestClassifyLabelRules(t *testing.T) {
	cases := []struct {
		compute, mem, idle float64
		want               WorkloadClass
	}{
		{0.7, 0.1, 0.05, ComputeBound},
		{0.1, 0.7, 0.05, MemoryBound},
		{0.2, 0.2, 0.5, SyncBound},
		{0.4, 0.4, 0.1, Mixed},
	}
	for _, c := range cases {
		if got := classify(c.compute, c.mem, c.idle); got != c.want {
			t.Errorf("classify(%g,%g,%g)=%s, want %s", c.compute, c.mem, c.idle, got, c.want)
		}
	}
}
