package experiment

import (
	"context"
	"errors"
	"testing"

	"cmppower/internal/obs"
)

// memoTestKey builds distinct keys cheaply.
func memoTestKey(i int) memoKey { return memoKey{app: "A", n: i} }

// memoOK is a compute stub returning a fresh measurement.
func memoOK() (*Measurement, error) { return &Measurement{App: "A"}, nil }

// TestMemoLRUEviction proves the bound: completed entries past capacity
// are evicted least-recently-used first, with the stats and registry
// counters tracking.
func TestMemoLRUEviction(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	c := newMemoCache(2)

	for _, i := range []int{1, 2} {
		if _, err := c.do(ctx, memoTestKey(i), reg, memoOK); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, err := c.do(ctx, memoTestKey(1), reg, memoOK); err != nil {
		t.Fatal(err)
	}
	// 3 evicts 2.
	if _, err := c.do(ctx, memoTestKey(3), reg, memoOK); err != nil {
		t.Fatal(err)
	}

	s := c.stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Capacity != 2 {
		t.Errorf("stats %+v, want 1 eviction, 2 entries, capacity 2", s)
	}
	if s.Hits != 1 || s.Misses != 3 {
		t.Errorf("hits/misses %d/%d, want 1/3", s.Hits, s.Misses)
	}
	if v := reg.Counter("memo_evictions_total").Value(); v != 1 {
		t.Errorf("memo_evictions_total = %d, want 1", v)
	}

	// 1 survived (recently used); 2 re-simulates.
	if _, err := c.do(ctx, memoTestKey(1), reg, memoOK); err != nil {
		t.Fatal(err)
	}
	if s := c.stats(); s.Hits != 2 {
		t.Errorf("recently-used key was evicted: stats %+v", s)
	}
	if _, err := c.do(ctx, memoTestKey(2), reg, memoOK); err != nil {
		t.Fatal(err)
	}
	if s := c.stats(); s.Misses != 4 {
		t.Errorf("evicted key did not re-simulate: stats %+v", s)
	}
}

// TestMemoInFlightNotEvicted proves an entry still computing cannot be
// evicted no matter how many completions pass it by: in-flight entries
// join the LRU only on completion.
func TestMemoInFlightNotEvicted(t *testing.T) {
	ctx := context.Background()
	c := newMemoCache(1)

	hold := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.do(ctx, memoTestKey(100), nil, func() (*Measurement, error) {
			close(started)
			<-hold
			return &Measurement{App: "slow"}, nil
		})
		done <- err
	}()
	<-started

	// Complete other keys; capacity 1 forces evictions among them.
	for _, i := range []int{1, 2, 3} {
		if _, err := c.do(ctx, memoTestKey(i), nil, memoOK); err != nil {
			t.Fatal(err)
		}
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The slow entry completed after the churn and must now be cached.
	pre := c.stats()
	if _, err := c.do(ctx, memoTestKey(100), nil, memoOK); err != nil {
		t.Fatal(err)
	}
	if s := c.stats(); s.Hits != pre.Hits+1 {
		t.Errorf("in-flight entry was lost to eviction: %+v -> %+v", pre, s)
	}
}

// TestMemoErrorNotCached re-pins (now under the LRU rewrite) that failed
// computes are never cached and never enter the LRU.
func TestMemoErrorNotCached(t *testing.T) {
	ctx := context.Background()
	c := newMemoCache(2)
	boom := errors.New("boom")
	if _, err := c.do(ctx, memoTestKey(1), nil, func() (*Measurement, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	s := c.stats()
	if s.Entries != 0 || s.Evictions != 0 {
		t.Errorf("failed compute left state behind: %+v", s)
	}
	// The key re-computes (and can then succeed).
	if _, err := c.do(ctx, memoTestKey(1), nil, memoOK); err != nil {
		t.Fatal(err)
	}
	if s := c.stats(); s.Misses != 2 || s.Entries != 1 {
		t.Errorf("retry after failure: %+v", s)
	}
}

// TestEnableMemoBounded pins the capacity plumbing on the rig surface.
func TestEnableMemoBounded(t *testing.T) {
	r := &Rig{}
	r.EnableMemoBounded(7)
	if got := r.MemoStats().Capacity; got != 7 {
		t.Errorf("capacity %d, want 7", got)
	}
	r2 := &Rig{}
	r2.EnableMemo()
	if got := r2.MemoStats().Capacity; got != DefaultMemoCapacity {
		t.Errorf("default capacity %d, want %d", got, DefaultMemoCapacity)
	}
	r3 := &Rig{}
	r3.EnableMemoBounded(0)
	if got := r3.MemoStats().Capacity; got != DefaultMemoCapacity {
		t.Errorf("zero capacity resolves to %d, want %d", got, DefaultMemoCapacity)
	}
}
