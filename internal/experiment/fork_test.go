package experiment

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestForkSweepMatchesNoFork is the warm-fork correctness contract at the
// sweep layer: a sweep that forks from recorded neighbor checkpoints is
// bit-identical to one that cold-starts every run, at every worker count,
// for both scenarios. This is the in-process twin of doctor check 14.
func TestForkSweepMatchesNoFork(t *testing.T) {
	apps := testApps(t)
	counts := []int{1, 2, 4}
	for _, scenarioII := range []bool{false, true} {
		run := func(workers int, noFork bool) ([]SweepOutcome, ForkStats) {
			rig := testRig(t)
			cfg := SweepConfig{Workers: workers, NoFork: noFork}
			var outs []SweepOutcome
			var err error
			if scenarioII {
				outs, err = rig.SweepScenarioIIWith(context.Background(), apps, counts, cfg)
			} else {
				outs, err = rig.SweepScenarioIWith(context.Background(), apps, counts, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			return outs, rig.ForkStats()
		}
		cold, coldStats := run(1, true)
		if coldStats.Hits != 0 || coldStats.Misses != 0 {
			t.Fatalf("NoFork sweep touched the fork cache: %+v", coldStats)
		}
		for _, j := range []int{1, 4, 16} {
			warm, st := run(j, false)
			outcomesEqual(t, cold, warm)
			if st.Hits == 0 {
				t.Errorf("scenarioII=%v workers=%d: forking sweep never forked: %+v", scenarioII, j, st)
			}
			if st.Records == 0 {
				t.Errorf("scenarioII=%v workers=%d: no checkpoints recorded: %+v", scenarioII, j, st)
			}
		}
	}
}

// TestForkDisabledUnderActiveFaults: runs under active injection advance
// the injector streams and are not pure functions of their key, so the
// fork cache must see zero traffic — no records, no replays.
func TestForkDisabledUnderActiveFaults(t *testing.T) {
	rig := faultyTestRig(t)
	if _, err := rig.SweepScenarioIWith(context.Background(), testApps(t)[:2], []int{1, 2}, SweepConfig{}); err != nil {
		t.Fatal(err)
	}
	st := rig.ForkStats()
	if st.Hits != 0 || st.Misses != 0 || st.Records != 0 || st.Entries != 0 {
		t.Fatalf("faulty sweep used the fork cache: %+v", st)
	}
}

// TestForkCacheEviction: under a budget too small to hold every column's
// checkpoint the cache must evict rather than grow, stay within budget,
// and the sweep must still complete with correct (cold-equal) results.
func TestForkCacheEviction(t *testing.T) {
	apps := testApps(t)
	counts := []int{1, 2, 4}
	cold := testRig(t)
	coldOuts, err := cold.SweepScenarioIWith(context.Background(), apps, counts,
		SweepConfig{Workers: 1, NoFork: true})
	if err != nil {
		t.Fatal(err)
	}

	tiny := testRig(t)
	tiny.EnableForkBounded(64 << 10) // 64 KiB: a fraction of one column's logs
	outs, err := tiny.SweepScenarioIWith(context.Background(), apps, counts, SweepConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	outcomesEqual(t, coldOuts, outs)
	st := tiny.ForkStats()
	if st.SizeBytes > st.CapacityBytes {
		t.Fatalf("fork cache exceeded its budget: %+v", st)
	}
	if st.Evictions == 0 && st.Records > 1 {
		t.Fatalf("tiny budget retained %d checkpoints without evicting: %+v", st.Records, st)
	}
}

// TestCloneForScale pins the derived-rig contract: a rig cloned to a new
// scale measures exactly what a freshly constructed rig at that scale
// measures, and shares the base rig's caches and substrates.
func TestCloneForScale(t *testing.T) {
	base := testRig(t)
	base.EnableMemo()
	base.EnableFork()

	const scale = 0.08
	derived, err := base.CloneForScale(scale)
	if err != nil {
		t.Fatal(err)
	}
	if derived.Scale != scale {
		t.Fatalf("derived scale %g, want %g", derived.Scale, scale)
	}
	if derived.memo != base.memo || derived.fork != base.fork {
		t.Error("CloneForScale dropped a shared cache")
	}
	if derived.Meter != base.Meter || derived.TM != base.TM || derived.Table != base.Table {
		t.Error("CloneForScale copied an immutable substrate")
	}

	fresh, err := NewRig(scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4} {
		a, err := derived.RunApp(app(t, "FFT"), n, base.Table.Nominal())
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.RunApp(app(t, "FFT"), n, fresh.Table.Nominal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("n=%d: derived rig measurement differs from fresh rig:\n  %+v\n  %+v", n, a, b)
		}
	}

	for _, bad := range []float64{0, -1, math.NaN()} {
		if _, err := base.CloneForScale(bad); err == nil {
			t.Errorf("CloneForScale accepted scale %g", bad)
		}
	}
}
