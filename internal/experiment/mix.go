package experiment

import (
	"context"
	"fmt"

	"cmppower/internal/cmp"
	"cmppower/internal/cpu"
	"cmppower/internal/dvfs"
	"cmppower/internal/splash"
	"cmppower/internal/workload"
)

// MixJob is one job's outcome inside a multiprogrammed run.
type MixJob struct {
	App string
	// SoloSeconds is the job's runtime alone on the chip at the same
	// operating point; MixSeconds is its runtime in the mix.
	SoloSeconds float64
	MixSeconds  float64
	// Slowdown is MixSeconds/SoloSeconds (>= ~1: shared L2, bus and
	// memory-channel contention).
	Slowdown float64
}

// MixResult is a multiprogrammed throughput measurement — the workload
// style of the SMT/CMP studies the paper's related work surveys, here on
// the same calibrated chip.
type MixResult struct {
	Point dvfs.OperatingPoint
	Jobs  []MixJob
	// WeightedSpeedup is Σ(solo/mix), the standard multiprogrammed
	// throughput metric (equals job count without any contention).
	WeightedSpeedup float64
	// PowerW is the chip power during the mix; WithinBudget compares it
	// with the single-core budget.
	PowerW       float64
	WithinBudget bool
}

// Mix runs one single-threaded copy of each application concurrently (one
// per core) at operating point p and reports per-job slowdowns, weighted
// speedup, and chip power.
func (r *Rig) Mix(apps []splash.App, p dvfs.OperatingPoint) (*MixResult, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("experiment: empty mix")
	}
	if len(apps) > r.TotalCores {
		return nil, fmt.Errorf("experiment: %d jobs exceed %d cores", len(apps), r.TotalCores)
	}
	// Solo baselines at the same operating point, each with the same
	// derived seed its job will use inside the mix. The derived seed is
	// passed per run so the shared rig is never mutated.
	solo := make([]float64, len(apps))
	for i, app := range apps {
		m, err := r.RunAppSeeded(context.Background(), app, 1, p, cmp.MultiSeed(r.Seed, i))
		if err != nil {
			return nil, err
		}
		solo[i] = m.Seconds
	}
	// The mix: one single-threaded program per core with the app's own
	// core tuning.
	n := len(apps)
	cfg := cmp.DefaultConfig(n, p)
	cfg.TotalCores = r.TotalCores
	cfg.Seed = r.Seed
	cfg.ScaleMemoryWithChip = r.ScaleMemoryWithChip
	cfg.PerCore = make([]cpu.Config, n)
	progs := make([]*workload.Program, n)
	for i, app := range apps {
		cfg.PerCore[i] = app.CoreConfig()
		progs[i] = app.Program(r.Scale)
	}
	res, err := cmp.RunMulti(progs, cfg)
	if err != nil {
		return nil, err
	}
	pw, err := r.Meter.Evaluate(r.FP, r.TM, res.Activity, res.Seconds, int64(res.Cycles)+1, p, n)
	if err != nil {
		return nil, err
	}
	out := &MixResult{Point: p, PowerW: pw.TotalW, WithinBudget: pw.TotalW <= r.BudgetW()}
	for i, app := range apps {
		mixSec := res.PerCore[i].FinishClock / p.Freq
		job := MixJob{
			App:         app.Name,
			SoloSeconds: solo[i],
			MixSeconds:  mixSec,
		}
		if solo[i] > 0 {
			job.Slowdown = mixSec / solo[i]
			out.WeightedSpeedup += solo[i] / mixSec
		}
		out.Jobs = append(out.Jobs, job)
	}
	return out, nil
}
