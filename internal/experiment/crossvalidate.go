package experiment

import (
	"errors"
	"fmt"

	"cmppower/internal/core"
	"cmppower/internal/splash"
)

// CrossRow compares the analytical model's prediction with the simulator's
// measurement for one core count.
type CrossRow struct {
	N int
	// MeasuredEff is the simulator's nominal parallel efficiency;
	// FittedEff is the extended-Amdahl model's value at this N.
	MeasuredEff float64
	FittedEff   float64
	// SimNormPower and AnalyticNormPower are the Scenario I normalized
	// power from the simulator and from the analytical model fed with the
	// fitted efficiency.
	SimNormPower      float64
	AnalyticNormPower float64
	// SimBudgetSpeedup and AnalyticBudgetSpeedup are the Scenario II
	// speedups under the single-core power budget.
	SimBudgetSpeedup      float64
	AnalyticBudgetSpeedup float64
}

// CrossValidation is the paper's central claim quantified for one
// application: "the analytical model predicts power-performance behavior
// reasonably well".
type CrossValidation struct {
	App   string
	Model core.EfficiencyModel
	// FitRMS is the RMS error of the efficiency fit.
	FitRMS float64
	Rows   []CrossRow
}

// CrossValidate runs both scenarios in the simulator, fits the measured
// efficiency curve, feeds the fit into the analytical model, and reports
// predictions next to measurements. The analytical model must be built for
// the rig's technology (use core.DefaultConfig(rig.Tech)).
func (r *Rig) CrossValidate(app splash.App, counts []int, m *core.Model) (*CrossValidation, error) {
	if m == nil {
		return nil, errors.New("experiment: nil analytical model")
	}
	if m.Tech().Name != r.Tech.Name {
		return nil, fmt.Errorf("experiment: analytical model is %s, rig is %s", m.Tech().Name, r.Tech.Name)
	}
	s1, err := r.ScenarioI(app, counts)
	if err != nil {
		return nil, err
	}
	s2, err := r.ScenarioII(app, counts)
	if err != nil {
		return nil, err
	}
	var ns []int
	var eps []float64
	for _, row := range s1.Rows {
		ns = append(ns, row.N)
		eps = append(eps, row.NominalEff)
	}
	fit, err := core.FitEfficiency(ns, eps)
	if err != nil {
		return nil, err
	}
	cv := &CrossValidation{App: app.Name, Model: fit, FitRMS: fit.FitError(ns, eps)}
	s2ByN := make(map[int]ScenarioIIRow, len(s2.Rows))
	for _, row := range s2.Rows {
		s2ByN[row.N] = row
	}
	for _, row := range s1.Rows {
		cr := CrossRow{
			N:            row.N,
			MeasuredEff:  row.NominalEff,
			FittedEff:    fit.Eps(row.N),
			SimNormPower: row.NormPower,
		}
		epsIn := cr.FittedEff
		if epsIn > 1 {
			epsIn = 1 // the analytical model's ε domain
		}
		a1, err := m.ScenarioI(row.N, epsIn)
		if err != nil {
			return nil, err
		}
		if a1.Feasible {
			cr.AnalyticNormPower = a1.NormPower
		}
		a2, err := m.ScenarioII(row.N, epsIn)
		if err != nil {
			return nil, err
		}
		cr.AnalyticBudgetSpeedup = a2.Speedup
		if s2row, ok := s2ByN[row.N]; ok {
			cr.SimBudgetSpeedup = s2row.ActualSpeedup
		}
		cv.Rows = append(cv.Rows, cr)
	}
	if len(cv.Rows) == 0 {
		return nil, fmt.Errorf("experiment: no comparable configurations for %s", app.Name)
	}
	return cv, nil
}

// Agreement summarizes a cross-validation: the mean absolute relative
// error of the analytical normalized-power and budget-speedup predictions
// against the simulator.
func (cv *CrossValidation) Agreement() (powerMARE, speedupMARE float64) {
	var pSum, sSum float64
	var pK, sK int
	for _, r := range cv.Rows {
		if r.SimNormPower > 0 && r.AnalyticNormPower > 0 {
			pSum += abs(r.AnalyticNormPower-r.SimNormPower) / r.SimNormPower
			pK++
		}
		if r.SimBudgetSpeedup > 0 && r.AnalyticBudgetSpeedup > 0 {
			sSum += abs(r.AnalyticBudgetSpeedup-r.SimBudgetSpeedup) / r.SimBudgetSpeedup
			sK++
		}
	}
	if pK > 0 {
		powerMARE = pSum / float64(pK)
	}
	if sK > 0 {
		speedupMARE = sSum / float64(sK)
	}
	return powerMARE, speedupMARE
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
