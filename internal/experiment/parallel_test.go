package experiment

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cmppower/internal/faults"
	"cmppower/internal/splash"
)

// faultyTestRig returns a rig with a moderately noisy fault injector and
// the DTM controller attached — the worst case for parallel determinism,
// since both carry per-run state.
func faultyTestRig(t *testing.T) *Rig {
	t.Helper()
	rig := testRig(t)
	rig.Seed = 11
	inj, err := faults.New(faults.Config{
		Seed: 11, SensorNoiseSigmaC: 1.5, DVFSFailProb: 0.05, CacheTransientProb: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Faults = inj
	dtm := DefaultDTMConfig()
	rig.DTM = &dtm
	return rig
}

func testApps(t *testing.T) []splash.App {
	t.Helper()
	return []splash.App{app(t, "FFT"), app(t, "LU"), app(t, "Radix"), app(t, "Ocean")}
}

// outcomesEqual compares sweeps structurally; errors are compared by
// message since error values don't round-trip through DeepEqual reliably.
func outcomesEqual(t *testing.T, a, b []SweepOutcome) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.App != y.App || x.Attempts != y.Attempts {
			t.Errorf("outcome %d header differs: %s/%d vs %s/%d", i, x.App, x.Attempts, y.App, y.Attempts)
		}
		if (x.Err == nil) != (y.Err == nil) {
			t.Errorf("outcome %d error presence differs: %v vs %v", i, x.Err, y.Err)
		} else if x.Err != nil && x.Err.Error() != y.Err.Error() {
			t.Errorf("outcome %d errors differ:\n  %v\n  %v", i, x.Err, y.Err)
		}
		if !reflect.DeepEqual(x.I, y.I) {
			t.Errorf("outcome %d ScenarioI results differ:\n  %+v\n  %+v", i, x.I, y.I)
		}
		if !reflect.DeepEqual(x.II, y.II) {
			t.Errorf("outcome %d ScenarioII results differ:\n  %+v\n  %+v", i, x.II, y.II)
		}
	}
}

// TestParallelSweepMatchesSerial is the engine's central guarantee: the
// same sweep at every worker count yields bit-identical outcomes, clean
// or under fault injection with DTM. Running it under -race also
// exercises the clone/memo paths for data races.
func TestParallelSweepMatchesSerial(t *testing.T) {
	counts := []int{1, 2, 4}
	for _, tc := range []struct {
		name  string
		build func(t *testing.T) *Rig
	}{
		{"clean", testRig},
		{"faults+dtm", faultyTestRig},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int, scenarioII bool) []SweepOutcome {
				rig := tc.build(t)
				cfg := SweepConfig{Workers: workers}
				var outs []SweepOutcome
				var err error
				if scenarioII {
					outs, err = rig.SweepScenarioIIWith(context.Background(), testApps(t), counts, cfg)
				} else {
					outs, err = rig.SweepScenarioIWith(context.Background(), testApps(t), counts, cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				return outs
			}
			for _, scenarioII := range []bool{false, true} {
				serial := run(1, scenarioII)
				for _, j := range []int{2, 4, 8} {
					outcomesEqual(t, serial, run(j, scenarioII))
				}
			}
		})
	}
}

// TestLegacySerialSweepMatchesParallelEngine pins the compatibility
// contract: the legacy SweepScenarioI entry point is the Workers=1 form
// of the pooled engine, not a separate code path.
func TestLegacySerialSweepMatchesParallelEngine(t *testing.T) {
	apps := testApps(t)[:2]
	legacy, err := faultyTestRig(t).SweepScenarioI(context.Background(), apps, []int{1, 2}, DefaultRetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := faultyTestRig(t).SweepScenarioIWith(context.Background(), apps, []int{1, 2},
		SweepConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	outcomesEqual(t, legacy, pooled)
}

// TestMemoDedupesRepeatedRuns verifies the cache actually absorbs the
// repeated baseline/profiling runs across Scenario I and II on one rig,
// and that served hits don't change results.
func TestMemoDedupesRepeatedRuns(t *testing.T) {
	apps := testApps(t)[:2]
	counts := []int{1, 2}

	rig := testRig(t)
	if _, err := rig.SweepScenarioIWith(context.Background(), apps, counts, SweepConfig{}); err != nil {
		t.Fatal(err)
	}
	afterI := rig.MemoStats()
	if afterI.Misses == 0 || afterI.Entries == 0 {
		t.Fatalf("memo saw no traffic after Scenario I: %+v", afterI)
	}
	// Scenario II on the same rig re-profiles every app at nominal — those
	// runs must come from the cache.
	if _, err := rig.SweepScenarioIIWith(context.Background(), apps, counts, SweepConfig{}); err != nil {
		t.Fatal(err)
	}
	afterII := rig.MemoStats()
	if afterII.Hits <= afterI.Hits {
		t.Fatalf("Scenario II after Scenario I produced no memo hits: %+v -> %+v", afterI, afterII)
	}

	// The memoized Scenario II must match a cold NoMemo run exactly.
	cold, err := testRig(t).SweepScenarioIIWith(context.Background(), apps, counts,
		SweepConfig{Workers: 1, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := testRig(t).SweepScenarioIIWith(context.Background(), apps, counts, SweepConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	outcomesEqual(t, cold, warm)
}

// TestMemoDisabledUnderActiveFaults: with injection enabled runs are
// order-dependent (each advances the injector streams), so they must
// never be served from cache.
func TestMemoDisabledUnderActiveFaults(t *testing.T) {
	rig := faultyTestRig(t)
	if rig.memoizable() {
		t.Fatal("rig with active injector reported memoizable")
	}
	if _, err := rig.SweepScenarioIWith(context.Background(), testApps(t)[:2], []int{1, 2}, SweepConfig{}); err != nil {
		t.Fatal(err)
	}
	if st := rig.MemoStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("faulty sweep used the memo cache: %+v", st)
	}
	// A zero-rate injector is memoizable: it cannot perturb anything.
	clean := testRig(t)
	inj, err := faults.New(faults.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	clean.Faults = inj
	if !clean.memoizable() {
		t.Fatal("zero-rate injector blocked memoization")
	}
}

// TestParallelSweepCancellation: cancelling mid-sweep must return a
// prefix of the input apps and ctx's error.
func TestParallelSweepCancellation(t *testing.T) {
	rig := testRig(t)
	apps := testApps(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := rig.SweepScenarioIWith(ctx, apps, []int{1, 2}, SweepConfig{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v", err)
	}
	if len(outs) > len(apps) {
		t.Fatalf("%d outcomes from %d apps", len(outs), len(apps))
	}
	for i, o := range outs {
		if o.App != apps[i].Name {
			t.Fatalf("outcome %d is %s, want prefix order %s", i, o.App, apps[i].Name)
		}
	}
}

// TestAttemptJoinsCancellationWithTransient pins satellite fix 1: when
// cancellation lands during a backoff wait, the returned error must keep
// both the context error (for errors.Is) and the transient *RunError
// provenance (for errors.As).
func TestAttemptJoinsCancellationWithTransient(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := &RunError{
		App: "FFT", N: 4, Seed: 7, Step: "simulate",
		Err: &faults.TransientError{App: "FFT", N: 4, Seq: 1},
	}
	attempts, err := attempt(ctx, RetryConfig{Attempts: 3, Backoff: time.Hour, MaxBackoff: time.Hour},
		func() error {
			cancel() // cancel before the backoff wait begins
			return transient
		})
	if attempts != 1 {
		t.Fatalf("made %d attempts, want 1", attempts)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(context.Canceled) lost: %v", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("*RunError provenance lost: %v", err)
	}
	if re.App != "FFT" || re.Seed != 7 || re.Step != "simulate" {
		t.Errorf("wrong provenance: %+v", re)
	}
	if !faults.IsTransient(err) {
		t.Errorf("transient marker lost: %v", err)
	}
}

// TestSeedStudyDoesNotMutateRigSeed pins satellite fix 2: SeedStudy
// threads seeds through per-run parameters instead of mutating the
// shared rig.
func TestSeedStudyDoesNotMutateRigSeed(t *testing.T) {
	rig := testRig(t)
	rig.Seed = 42
	if _, err := rig.SeedStudy(app(t, "FFT"), 2, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if rig.Seed != 42 {
		t.Fatalf("SeedStudy mutated rig seed to %d", rig.Seed)
	}
}

// TestRigCloneIsolation: clones share the immutable substrates and the
// memo cache but must not share fault-injector streams or DTM state.
func TestRigCloneIsolation(t *testing.T) {
	rig := faultyTestRig(t)
	rig.EnableMemo()
	c := rig.Clone()
	if c.Faults == rig.Faults {
		t.Error("clone shares the fault injector")
	}
	if c.DTM == rig.DTM {
		t.Error("clone shares the DTM config pointer")
	}
	if c.memo != rig.memo {
		t.Error("clone does not share the memo cache")
	}
	if c.Meter != rig.Meter || c.TM != rig.TM || c.Table != rig.Table {
		t.Error("clone copied an immutable substrate")
	}
	// Same salt twice must yield identical fork streams; draining one
	// must not advance the other.
	a, b := rig.cloneFor("x").Faults, rig.cloneFor("x").Faults
	for i := 0; i < 64; i++ {
		a.ReadSensor(i%16, 70)
	}
	for i := 0; i < 64; i++ {
		b.ReadSensor(i%16, 70)
	}
	if a.Digest() != b.Digest() {
		t.Error("equal-salt forks diverged")
	}
}

// TestRunIndexedOrderAndBounds: every index runs exactly once for any
// worker count, including workers > n and n == 0.
func TestRunIndexedOrderAndBounds(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 10
		hits := make([]int, n)
		if err := RunIndexed(context.Background(), workers, n, func(i int) { hits[i]++ }); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	if err := RunIndexed(context.Background(), 4, 0, func(int) { t.Fatal("ran") }); err != nil {
		t.Fatal(err)
	}
}
