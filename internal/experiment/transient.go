package experiment

import (
	"errors"
	"fmt"

	"cmppower/internal/cmp"
	"cmppower/internal/dvfs"
	"cmppower/internal/floorplan"
	"cmppower/internal/phys"
	"cmppower/internal/splash"
)

// TransientPoint is one interval of a transient thermal trace.
type TransientPoint struct {
	StartCycle float64
	EndCycle   float64
	// Seconds is the (dilated) wall-clock length of the interval.
	Seconds float64
	// DynW and TotalW are the interval's average dynamic and total power.
	DynW   float64
	TotalW float64
	// AvgCoreTempC and PeakTempC are the die state at the interval's end.
	AvgCoreTempC float64
	PeakTempC    float64
}

// TransientConfig controls a transient trace run.
type TransientConfig struct {
	// SampleCycles sets the activity-sampling granularity.
	SampleCycles float64
	// TimeDilation stretches each interval's wall-clock duration. Die
	// thermal time constants are tens of milliseconds while the scaled
	// workloads run for a few; dilation models the program phase repeating
	// (the standard device for thermal studies of short benchmark slices).
	// 1 means real time.
	TimeDilation float64
	// StartTempC is the uniform initial die temperature (default ambient).
	StartTempC float64
}

// DefaultTransientConfig returns a trace setup that resolves the warming
// curve of a millisecond-scale run: 16 intervals of dilated execution.
func DefaultTransientConfig() TransientConfig {
	return TransientConfig{
		SampleCycles: 0, // derived from the run length when zero
		TimeDilation: 2000,
		StartTempC:   phys.AmbientTempC,
	}
}

// Transient runs app on n cores at operating point p, splits the run into
// activity intervals, and steps the thermal network through them, with
// static power tracking the evolving block temperatures. It returns the
// per-interval trace.
func (r *Rig) Transient(app splash.App, n int, p dvfs.OperatingPoint, tc TransientConfig) ([]TransientPoint, error) {
	if !app.RunsOn(n) {
		return nil, fmt.Errorf("experiment: %s does not run on %d cores", app.Name, n)
	}
	if tc.TimeDilation <= 0 {
		return nil, fmt.Errorf("experiment: non-positive time dilation %g", tc.TimeDilation)
	}
	if tc.StartTempC == 0 {
		tc.StartTempC = phys.AmbientTempC
	}
	if tc.StartTempC < phys.AmbientTempC {
		return nil, fmt.Errorf("experiment: start temperature %g below ambient", tc.StartTempC)
	}
	cfg := cmp.DefaultConfig(n, p)
	cfg.TotalCores = r.TotalCores
	cfg.Core = app.CoreConfig()
	cfg.Seed = r.Seed
	cfg.ScaleMemoryWithChip = r.ScaleMemoryWithChip
	cfg.SampleCycles = tc.SampleCycles
	if cfg.SampleCycles <= 0 {
		// Probe the run length once, then sample it into ~16 intervals.
		probe, err := cmp.Run(app.Program(r.Scale), cfg)
		if err != nil {
			return nil, err
		}
		cfg.SampleCycles = probe.Cycles / 16
		if cfg.SampleCycles < 1 {
			cfg.SampleCycles = 1
		}
	}
	res, err := cmp.Run(app.Program(r.Scale), cfg)
	if err != nil {
		return nil, err
	}
	if len(res.Samples) == 0 {
		return nil, errors.New("experiment: run produced no samples")
	}

	state := r.TM.NewTransientState()
	for i := range state.Block {
		state.Block[i] = tc.StartTempC
	}
	state.SinkC = tc.StartTempC
	var trace []TransientPoint
	for _, s := range res.Samples {
		cycles := s.EndCycle - s.StartCycle
		// Power is the interval's real average (activity over real time);
		// dilation only stretches how long the thermal network sees it.
		realDt := cycles / p.Freq
		dt := realDt * tc.TimeDilation
		dyn, err := r.Meter.DynamicBlockPower(r.FP, s.Activity, realDt, int64(cycles)+1, p, n)
		if err != nil {
			return nil, err
		}
		// Static power from the block temperatures at the interval start;
		// intervals are short relative to thermal time constants, so this
		// explicit coupling is stable.
		total := make([]float64, len(dyn))
		var dynW, totW float64
		for i := range dyn {
			frac := r.Meter.StaticFraction(p.Volt, phys.Clamp(state.Block[i], phys.AmbientTempC, 120))
			total[i] = dyn[i] * (1 + frac)
			dynW += dyn[i]
			totW += total[i]
		}
		if err := r.TM.TransientStep(state, total, dt); err != nil {
			return nil, err
		}
		pt := TransientPoint{
			StartCycle: s.StartCycle,
			EndCycle:   s.EndCycle,
			Seconds:    dt,
			DynW:       dynW,
			TotalW:     totW,
		}
		pt.AvgCoreTempC = r.TM.AvgWeighted(state.Block, func(b floorplan.Block) bool {
			return b.Core >= 0 && b.Core < n
		})
		var peak float64
		for _, tC := range state.Block {
			if tC > peak {
				peak = tC
			}
		}
		pt.PeakTempC = peak
		trace = append(trace, pt)
	}
	return trace, nil
}
