package experiment

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cmppower/internal/splash"
	"cmppower/internal/thermal"
)

// SweepConfig configures a fault-isolated scenario sweep. The zero value
// gives the defaults: a GOMAXPROCS-sized worker pool, the standard retry
// policy, and run memoization on.
type SweepConfig struct {
	// Retry bounds the per-app retry loop for injected-transient failures.
	Retry RetryConfig
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. The sweep's
	// outcomes are bit-identical for every worker count: work items are
	// dispatched and merged in input order, every item runs on its own rig
	// clone with an independently seeded fault stream, and memoized runs
	// are pure functions of their key.
	Workers int
	// NoMemo disables the measurement memo cache for this sweep, forcing
	// every baseline/profiling run to re-simulate.
	NoMemo bool
	// NoFork disables warm-state forking for this sweep: every run
	// regenerates its workload event streams from scratch instead of
	// replaying a completed neighbor's recorded logs. Outputs are
	// bit-identical either way (doctor check 14); the flag exists for
	// benchmarking and fault isolation.
	NoFork bool
}

// workersOrDefault resolves the worker count.
func (c SweepConfig) workersOrDefault() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// RunIndexed runs fn(i) for every i in [0, n) across a bounded pool of
// workers (<= 0 means GOMAXPROCS). Indices are dispatched in order;
// cancellation stops further dispatch, so the completed indices always
// form a prefix of the input once RunIndexed returns. It returns ctx's
// error, nil when every index ran to completion with the context still
// live. fn must be safe for concurrent calls on distinct indices.
func RunIndexed(ctx context.Context, workers, n int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// sweepApps is the engine behind SweepScenarioIWith/IIWith: it fans one
// work item per app out across the pool and merges outcomes back in input
// order. Every item runs on its own clone of r whose fault streams are
// salted by (kind, app) — deterministic in the fault seed alone, so the
// merged outcomes are identical for every worker count. On cancellation
// the outcomes gathered so far (a prefix of apps, the last possibly
// carrying the cancellation as its Err) are returned with ctx's error.
func (r *Rig) sweepApps(ctx context.Context, kind string, apps []splash.App, cfg SweepConfig, run func(*Rig, splash.App, RetryConfig) SweepOutcome) ([]SweepOutcome, error) {
	rc := cfg.Retry.withDefaults()
	if !cfg.NoMemo {
		r.EnableMemo()
	}
	if !cfg.NoFork {
		r.EnableFork()
	}
	workers := cfg.workersOrDefault()
	results := make([]*SweepOutcome, len(apps))
	var busyNs atomic.Int64
	start := time.Now()
	err := RunIndexed(ctx, workers, len(apps), func(i int) {
		t0 := time.Now()
		o := run(r.cloneFor(kind+"/"+apps[i].Name), apps[i], rc)
		busyNs.Add(time.Since(t0).Nanoseconds())
		results[i] = &o
	})
	out := make([]SweepOutcome, 0, len(apps))
	for _, o := range results {
		if o == nil {
			break // never dispatched: cancellation landed first
		}
		out = append(out, *o)
	}
	if r.Obs != nil {
		// Pool utilization is wall-clock truth, not simulation state, so it
		// is volatile by construction: the values differ run to run and
		// worker count to worker count, and must stay out of the
		// deterministic snapshot that manifests digest.
		r.Obs.Counter("sweep_items_total").Add(int64(len(out)))
		wall := time.Since(start).Seconds()
		busy := float64(busyNs.Load()) / 1e9
		r.Obs.VolatileGauge("sweep_pool_workers").Set(float64(workers))
		r.Obs.VolatileGauge("sweep_pool_busy_seconds").Set(busy)
		r.Obs.VolatileGauge("sweep_pool_wall_seconds").Set(wall)
		if denom := wall * float64(workers); denom > 0 {
			r.Obs.VolatileGauge("sweep_pool_utilization").Set(busy / denom)
		}
		// Factorization reuse is process-cumulative (the pool outlives any
		// one sweep) and its hit/miss split depends on construction order
		// across goroutines, so it is volatile like the pool gauges above.
		facHits, _ := thermal.FactorStats()
		r.Obs.VolatileGauge("thermal_factor_reuse").Set(float64(facHits))
	}
	return out, err
}

// SweepScenarioIWith is SweepScenarioI under a SweepConfig: the apps fan
// out across a bounded worker pool and the memo cache dedupes repeated
// baseline/profiling runs. Outcomes are returned in input order and are
// bit-identical for every worker count.
func (r *Rig) SweepScenarioIWith(ctx context.Context, apps []splash.App, coreCounts []int, cfg SweepConfig) ([]SweepOutcome, error) {
	return r.sweepApps(ctx, "scenarioI", apps, cfg, func(w *Rig, app splash.App, rc RetryConfig) SweepOutcome {
		o := SweepOutcome{App: app.Name}
		o.Attempts, o.Err = attempt(ctx, rc, func() error {
			res, err := w.ScenarioICtx(ctx, app, coreCounts)
			o.I = res
			return err
		})
		return o
	})
}

// SweepScenarioIIWith is SweepScenarioII under a SweepConfig; see
// SweepScenarioIWith.
func (r *Rig) SweepScenarioIIWith(ctx context.Context, apps []splash.App, coreCounts []int, cfg SweepConfig) ([]SweepOutcome, error) {
	return r.sweepApps(ctx, "scenarioII", apps, cfg, func(w *Rig, app splash.App, rc RetryConfig) SweepOutcome {
		o := SweepOutcome{App: app.Name}
		o.Attempts, o.Err = attempt(ctx, rc, func() error {
			res, err := w.ScenarioIICtx(ctx, app, coreCounts)
			o.II = res
			return err
		})
		return o
	})
}
