package experiment

import "testing"

func TestMetricsSweepBasics(t *testing.T) {
	rig := testRig(t)
	sweep, err := rig.Metrics(app(t, "FFT"), []int{1, 4}, []float64{800e6, 1.6e9, 3.2e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 6 {
		t.Fatalf("rows=%d, want 6", len(sweep.Rows))
	}
	for _, row := range sweep.Rows {
		if row.EnergyJ <= 0 || row.EDP <= 0 || row.ED2P <= 0 {
			t.Errorf("non-positive metric in %+v", row)
		}
		if row.EDP < row.EnergyJ*row.Seconds*0.999 || row.EDP > row.EnergyJ*row.Seconds*1.001 {
			t.Errorf("EDP inconsistent: %g vs %g", row.EDP, row.EnergyJ*row.Seconds)
		}
	}
	// Delay-weighted optima cannot be slower than the pure-energy optimum.
	if sweep.BestED2P.Seconds > sweep.BestEnergy.Seconds*1.001 {
		t.Errorf("ED2P optimum slower than energy optimum: %g vs %g s",
			sweep.BestED2P.Seconds, sweep.BestEnergy.Seconds)
	}
	if sweep.BestEDP.EDP > sweep.BestEnergy.EDP {
		t.Error("BestEDP not optimal under EDP")
	}
}

func TestMetricsParallelWinsUnderEDP(t *testing.T) {
	// For a scalable app, a multi-core configuration should beat the
	// single core under EDP (more speed at comparable energy).
	rig := testRig(t)
	sweep, err := rig.Metrics(app(t, "Barnes"), []int{1, 8}, []float64{1.6e9, 3.2e9})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.BestEDP.N != 8 {
		t.Errorf("EDP optimum at N=%d, expected the parallel configuration", sweep.BestEDP.N)
	}
}

func TestMetricsValidation(t *testing.T) {
	rig := testRig(t)
	a := app(t, "FFT")
	if _, err := rig.Metrics(a, nil, []float64{1e9}); err == nil {
		t.Error("accepted empty counts")
	}
	if _, err := rig.Metrics(a, []int{1}, nil); err == nil {
		t.Error("accepted empty freqs")
	}
	if _, err := rig.Metrics(a, []int{1}, []float64{-1}); err == nil {
		t.Error("accepted negative frequency")
	}
	lu := app(t, "LU")
	if _, err := rig.Metrics(lu, []int{3, 5}, []float64{1e9}); err == nil {
		t.Error("accepted sweep with no runnable core counts")
	}
}

func TestThriftyBarrierSavesEnergy(t *testing.T) {
	rig := testRig(t)
	// Volrend is the most imbalanced model (jitter 0.38): waiters pile up
	// at barriers, so sleeping there must save energy without changing
	// timing.
	res, err := rig.ThriftyBarrier(app(t, "Volrend"), 8, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if res.SleepFraction <= 0 {
		t.Fatal("no sleep recorded at barriers")
	}
	if res.SavingFraction <= 0 {
		t.Errorf("thrifty barriers saved nothing: %+v", res)
	}
	if res.ThriftyPowerW >= res.SpinPowerW {
		t.Errorf("thrifty power %g >= spin power %g", res.ThriftyPowerW, res.SpinPowerW)
	}
	// Savings are bounded by what the waiters could have burned.
	if res.SavingFraction > res.SleepFraction {
		t.Errorf("saving %g exceeds sleep share %g", res.SavingFraction, res.SleepFraction)
	}
}

func TestThriftyBarrierOrdering(t *testing.T) {
	// The imbalanced app saves more than the balanced one.
	rig := testRig(t)
	vol, err := rig.ThriftyBarrier(app(t, "Volrend"), 8, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	fmm, err := rig.ThriftyBarrier(app(t, "FMM"), 8, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if vol.SleepFraction <= fmm.SleepFraction {
		t.Errorf("Volrend sleep share %g should exceed FMM %g", vol.SleepFraction, fmm.SleepFraction)
	}
}

func TestThriftyBarrierValidation(t *testing.T) {
	rig := testRig(t)
	if _, err := rig.ThriftyBarrier(app(t, "FFT"), 1, rig.Table.Nominal()); err == nil {
		t.Error("accepted single core")
	}
}
