package experiment

import (
	"fmt"

	"cmppower/internal/dvfs"
	"cmppower/internal/splash"
)

// MetricRow is one (core count, operating point) configuration evaluated
// under the energy metrics family.
type MetricRow struct {
	N       int
	Point   dvfs.OperatingPoint
	Seconds float64
	PowerW  float64
	// EnergyJ is total energy = power × time.
	EnergyJ float64
	// EDP is the energy-delay product (J·s); ED2P weights delay twice.
	// Lower is better for all three metrics.
	EDP  float64
	ED2P float64
}

// MetricSweep evaluates an application across core counts and frequencies
// under energy, EDP and ED²P — the metric family the power-aware
// architecture literature uses to weigh performance against energy. The
// paper optimizes each in isolation (power at fixed performance,
// performance at fixed power); this sweep exposes the continuum between
// those two corners.
type MetricSweep struct {
	App        string
	Rows       []MetricRow
	BestEnergy MetricRow
	BestEDP    MetricRow
	BestED2P   MetricRow
}

// Metrics sweeps app over the given core counts and frequency grid
// (ladder-interpolated points) and returns all rows plus the optimum under
// each metric.
func (r *Rig) Metrics(app splash.App, counts []int, freqs []float64) (*MetricSweep, error) {
	if len(counts) == 0 || len(freqs) == 0 {
		return nil, fmt.Errorf("experiment: empty sweep (counts=%d freqs=%d)", len(counts), len(freqs))
	}
	sweep := &MetricSweep{App: app.Name}
	for _, n := range counts {
		if !app.RunsOn(n) {
			continue
		}
		for _, f := range freqs {
			if f <= 0 {
				return nil, fmt.Errorf("experiment: non-positive frequency %g", f)
			}
			point := r.Table.PointFor(f)
			m, err := r.RunApp(app, n, point)
			if err != nil {
				return nil, err
			}
			row := MetricRow{
				N: n, Point: point,
				Seconds: m.Seconds, PowerW: m.PowerW,
				EnergyJ: m.PowerW * m.Seconds,
			}
			row.EDP = row.EnergyJ * row.Seconds
			row.ED2P = row.EDP * row.Seconds
			sweep.Rows = append(sweep.Rows, row)
		}
	}
	if len(sweep.Rows) == 0 {
		return nil, fmt.Errorf("experiment: %s runs on none of the requested core counts", app.Name)
	}
	sweep.BestEnergy = sweep.Rows[0]
	sweep.BestEDP = sweep.Rows[0]
	sweep.BestED2P = sweep.Rows[0]
	for _, row := range sweep.Rows[1:] {
		if row.EnergyJ < sweep.BestEnergy.EnergyJ {
			sweep.BestEnergy = row
		}
		if row.EDP < sweep.BestEDP.EDP {
			sweep.BestEDP = row
		}
		if row.ED2P < sweep.BestED2P.ED2P {
			sweep.BestED2P = row
		}
	}
	return sweep, nil
}
