package experiment

import (
	"testing"

	"cmppower/internal/scenario"
	"cmppower/internal/splash"
)

// peak returns the hottest entry.
func peak(temps []float64) float64 {
	var p float64
	for _, v := range temps {
		if v > p {
			p = v
		}
	}
	return p
}

// scaleShape scales a relative power shape to the given total watts.
func scaleShape(shape []float64, totalW float64) []float64 {
	var sum float64
	for _, v := range shape {
		sum += v
	}
	out := make([]float64, len(shape))
	for i, v := range shape {
		out[i] = v / sum * totalW
	}
	return out
}

func scenApp(t *testing.T, name string) splash.App {
	t.Helper()
	a, err := splash.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The baseline scenario must reproduce the flag-era apparatus bit for
// bit: same calibration, same measurement, empty cache digest.
func TestScenarioBaselineBitIdentical(t *testing.T) {
	legacy, err := NewRig(0.05)
	if err != nil {
		t.Fatal(err)
	}
	rig, err := NewRigFromScenario(scenario.Baseline(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rig.ScenarioDigest() != "" {
		t.Errorf("baseline scenario digest = %q, want empty (legacy cache identity)", rig.ScenarioDigest())
	}
	if rig.ScenarioName() != "baseline-2005" {
		t.Errorf("scenario name = %q", rig.ScenarioName())
	}
	if *rig.Cal != *legacy.Cal {
		t.Errorf("calibration differs: %+v vs %+v", rig.Cal, legacy.Cal)
	}
	ap := scenApp(t, "FMM")
	p := legacy.Table.Nominal()
	want, err := legacy.RunApp(ap, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rig.RunApp(ap, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("baseline scenario measurement differs:\n got %+v\nwant %+v", got, want)
	}
}

// Different scenarios must never share a memo entry: the digest is part
// of the key, so a 90nm chip's cached run cannot answer a 65nm request.
func TestScenarioDigestPreventsMemoCollision(t *testing.T) {
	a, err := NewRigFromScenario(scenario.Baseline(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sc := scenario.Baseline()
	sc.Name = "90nm-variant"
	sc.Node = "90nm"
	b, err := NewRigFromScenario(sc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if b.ScenarioDigest() == "" {
		t.Fatal("non-baseline scenario got empty digest")
	}
	ka := a.memoKeyFor("FMM", 4, a.Table.Nominal(), 1)
	kb := b.memoKeyFor("FMM", 4, a.Table.Nominal(), 1)
	if ka == kb {
		t.Error("memo keys collide across scenarios")
	}
	if a.SurrogateKey("FMM") == b.SurrogateKey("FMM") {
		t.Error("surrogate keys collide across scenarios")
	}
}

// A big/little scenario must run end-to-end, and the little cores must
// actually slow the chip versus the homogeneous baseline.
func TestScenarioBigLittleRuns(t *testing.T) {
	sc := scenario.Baseline()
	sc.Name = "biglittle-test"
	sc.Chip.TotalCores = 8
	sc.DVFS.Domains = []scenario.DomainSpec{
		{Name: "big", Cores: []int{0, 1, 2, 3}, SpeedRatio: 1},
		{Name: "little", Cores: []int{4, 5, 6, 7}, SpeedRatio: 0.5},
	}
	rig, err := NewRigFromScenario(sc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rig.Domains == nil || rig.Domains.Len() != 2 {
		t.Fatal("domain set not built")
	}
	base, err := NewCustomRig(8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ap := scenApp(t, "FMM")
	p := rig.Table.Nominal()
	hetero, err := rig.RunApp(ap, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	homo, err := base.RunApp(ap, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	if hetero.Seconds <= homo.Seconds {
		t.Errorf("half-speed island did not slow the run: %g vs %g s", hetero.Seconds, homo.Seconds)
	}
	if hetero.PowerW >= homo.PowerW {
		t.Errorf("half-speed island did not cut power: %g vs %g W", hetero.PowerW, homo.PowerW)
	}
}

// A 3D-stacked scenario must run end-to-end and run hotter than the
// planar chip at equal power-relevant configuration.
func TestScenario3DStackRuns(t *testing.T) {
	sc := scenario.Baseline()
	sc.Name = "3dstack-test"
	sc.Chip.Layers = 4
	rig, err := NewRigFromScenario(sc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := rig.FP.Layers(); got != 4 {
		t.Fatalf("floorplan layers = %d, want 4", got)
	}
	// Yavits-style cap monotonicity within the stack: the same areal
	// power density on a buried die crosses the inter-die bonds before
	// reaching the sink, so it runs hotter than on the sink-adjacent
	// die — equivalently, the power that lands the chip at 100 °C is
	// lower when the work lives on a buried layer (the thermal knee
	// moves left for buried-die scheduling).
	layerShape := func(layer int) []float64 {
		shape := make([]float64, len(rig.FP.Blocks))
		for i, b := range rig.FP.Blocks {
			if b.Core >= 0 && b.Layer == layer {
				shape[i] = b.Area()
			}
		}
		return shape
	}
	top := rig.FP.Layers() - 1
	_, sinkW, err := rig.TM.PowerForPeak(layerShape(0), 100)
	if err != nil {
		t.Fatal(err)
	}
	_, buriedW, err := rig.TM.PowerForPeak(layerShape(top), 100)
	if err != nil {
		t.Fatal(err)
	}
	if buriedW >= sinkW {
		t.Errorf("buried-layer power cap %g W >= sink-adjacent %g W", buriedW, sinkW)
	}
	// Equal watts, directly compared: buried injection peaks hotter.
	const probeW = 20.0
	sinkT, err := rig.TM.SteadyState(scaleShape(layerShape(0), probeW))
	if err != nil {
		t.Fatal(err)
	}
	buriedT, err := rig.TM.SteadyState(scaleShape(layerShape(top), probeW))
	if err != nil {
		t.Fatal(err)
	}
	if peak(buriedT) <= peak(sinkT) {
		t.Errorf("buried die not hotter at %g W: %g °C vs %g °C", probeW, peak(buriedT), peak(sinkT))
	}
	ap := scenApp(t, "FMM")
	m, err := rig.RunApp(ap, 16, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakTempC <= 0 || m.PowerW <= 0 {
		t.Errorf("degenerate 3D measurement: %+v", m)
	}
}

// A one-domain scenario must take the chip-wide DTM path and reproduce
// the legacy controller's stats exactly.
func TestDTMSingleDomainMatchesChipWide(t *testing.T) {
	sc := scenario.Baseline()
	sc.Name = "one-domain"
	sc.DVFS.Domains = []scenario.DomainSpec{
		{Name: "all", Cores: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, SpeedRatio: 1},
	}
	rig, err := NewRigFromScenario(sc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewRig(0.05)
	if err != nil {
		t.Fatal(err)
	}
	dtm := DefaultDTMConfig()
	rig.DTM, legacy.DTM = &dtm, &dtm
	ap := scenApp(t, "FMM")
	// Overclock-ish request: top of ladder so the controller has work.
	p := rig.Table.Nominal()
	got, err := rig.RunApp(ap, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacy.RunApp(ap, 16, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.DTM == nil || want.DTM == nil {
		t.Fatal("DTM stats missing")
	}
	if *got.DTM != *want.DTM {
		t.Errorf("single-domain DTM differs from chip-wide:\n got %+v\nwant %+v", got.DTM, want.DTM)
	}
}

// Multi-domain DTM must run end-to-end and produce sane stats.
func TestDTMMultiDomainRuns(t *testing.T) {
	sc := scenario.Baseline()
	sc.Name = "dtm-domains"
	sc.Chip.TotalCores = 8
	sc.DVFS.Domains = []scenario.DomainSpec{
		{Name: "big", Cores: []int{0, 1, 2, 3}, SpeedRatio: 1},
		{Name: "little", Cores: []int{4, 5, 6, 7}, SpeedRatio: 0.5},
	}
	rig, err := NewRigFromScenario(sc, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dtm := DefaultDTMConfig()
	rig.DTM = &dtm
	ap := scenApp(t, "FMM")
	m, err := rig.RunApp(ap, 8, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if m.DTM == nil {
		t.Fatal("multi-domain DTM stats missing")
	}
	if m.DTM.PeakTempC <= 0 || m.DTM.ThrottleResidency < 0 || m.DTM.ThrottleResidency > 1 {
		t.Errorf("degenerate multi-domain DTM stats: %+v", m.DTM)
	}
}

// CapScale must shift pre-calibration energies but cancel after
// calibration at the same node; different nodes calibrate differently.
func TestScenarioTechnologyAxis(t *testing.T) {
	for _, node := range []string{"130nm", "90nm", "65nm"} {
		sc := scenario.Baseline()
		sc.Name = "tech-" + node
		sc.Node = node
		rig, err := NewRigFromScenario(sc, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		m, err := rig.RunApp(scenApp(t, "FMM"), 2, rig.Table.Nominal())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		if m.PowerW <= 0 || m.Seconds <= 0 {
			t.Errorf("%s: degenerate measurement %+v", node, m)
		}
	}
}
