package experiment

import (
	"fmt"

	"cmppower/internal/cmp"
	"cmppower/internal/splash"
)

// PlacementPolicy chooses which physical cores host an n-thread run on the
// 16-core die — the thermal-aware core-assignment question that follows
// directly from the paper's shut-down-unused-cores assumption.
type PlacementPolicy string

// Placement policies.
const (
	// Contiguous activates cores 0..n-1 (the paper's implicit layout).
	Contiguous PlacementPolicy = "contiguous"
	// Spread scatters active cores across the die to maximize the silicon
	// between hot tiles (checkerboard-style).
	Spread PlacementPolicy = "spread"
)

// spreadOrder lists the 16 grid positions in an order that keeps any
// prefix maximally dispersed on the 4×4 core grid.
var spreadOrder = []int{0, 15, 3, 12, 5, 10, 6, 9, 1, 14, 2, 13, 4, 11, 7, 8}

// placementPerm returns thread-to-physical-core assignments for the policy.
func placementPerm(policy PlacementPolicy, n, totalCores int) ([]int, error) {
	if n < 1 || n > totalCores {
		return nil, fmt.Errorf("experiment: %d threads on %d cores", n, totalCores)
	}
	perm := make([]int, n)
	switch policy {
	case Contiguous:
		for i := range perm {
			perm[i] = i
		}
	case Spread:
		if totalCores != len(spreadOrder) {
			// Fall back to striding for non-16-core chips.
			stride := totalCores / n
			if stride < 1 {
				stride = 1
			}
			for i := range perm {
				perm[i] = (i * stride) % totalCores
			}
		} else {
			copy(perm, spreadOrder[:n])
		}
	default:
		return nil, fmt.Errorf("experiment: unknown placement policy %q", policy)
	}
	return perm, nil
}

// PlacementRow is one policy's thermal outcome.
type PlacementRow struct {
	Policy       PlacementPolicy
	PowerW       float64
	AvgCoreTempC float64
	PeakTempC    float64
}

// PlacementStudy compares placements for one run. Timing is placement-
// independent in this model (the bus is uniform), so the comparison is
// purely thermal: identical activity mapped onto different core subsets.
type PlacementStudy struct {
	App  string
	N    int
	Rows []PlacementRow
	// PeakReduction is contiguous peak minus spread peak, °C.
	PeakReduction float64
}

// Placement runs app once on n cores at nominal V/f and evaluates the
// power/thermal outcome under each placement policy.
func (r *Rig) Placement(app splash.App, n int) (*PlacementStudy, error) {
	if !app.RunsOn(n) || n < 2 {
		return nil, fmt.Errorf("experiment: %s does not run on %d cores (need n >= 2)", app.Name, n)
	}
	if n > r.TotalCores {
		return nil, fmt.Errorf("experiment: %d threads exceed %d cores", n, r.TotalCores)
	}
	p := r.Table.Nominal()
	cfg := cmp.DefaultConfig(n, p)
	cfg.TotalCores = r.TotalCores
	cfg.Core = app.CoreConfig()
	cfg.Seed = r.Seed
	res, err := cmp.Run(app.Program(r.Scale), cfg)
	if err != nil {
		return nil, err
	}
	study := &PlacementStudy{App: app.Name, N: n}
	for _, policy := range []PlacementPolicy{Contiguous, Spread} {
		perm, err := placementPerm(policy, n, r.TotalCores)
		if err != nil {
			return nil, err
		}
		act, err := res.Activity.Remap(perm)
		if err != nil {
			return nil, err
		}
		active := make([]bool, r.TotalCores)
		for _, c := range perm {
			active[c] = true
		}
		pw, err := r.Meter.EvaluateSet(r.FP, r.TM, act, res.Seconds, int64(res.Cycles)+1, p, active)
		if err != nil {
			return nil, err
		}
		study.Rows = append(study.Rows, PlacementRow{
			Policy: policy, PowerW: pw.TotalW,
			AvgCoreTempC: pw.AvgCoreTemp, PeakTempC: pw.PeakTempC,
		})
	}
	study.PeakReduction = study.Rows[0].PeakTempC - study.Rows[1].PeakTempC
	return study, nil
}
