// Package experiment implements the paper's experimental methodology (§4)
// on top of the simulator stack: off-line profiling at nominal
// voltage/frequency, Eq. 7 target-frequency computation for Scenario I,
// and the profile-guided budget search of Scenario II, each followed by a
// re-simulation at the chosen operating point with full power/thermal
// evaluation.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"cmppower/internal/cmp"
	"cmppower/internal/dvfs"
	"cmppower/internal/faults"
	"cmppower/internal/floorplan"
	"cmppower/internal/obs"
	"cmppower/internal/phys"
	"cmppower/internal/power"
	"cmppower/internal/scenario"
	"cmppower/internal/splash"
	"cmppower/internal/stats"
	"cmppower/internal/surrogate"
	"cmppower/internal/thermal"
)

// Rig bundles the experimental apparatus: the Table 1 chip, its thermal
// model, the calibrated power meter, and the DVFS ladder.
type Rig struct {
	Tech       phys.Technology
	Table      *dvfs.Table
	FP         *floorplan.Floorplan
	TM         *thermal.Model
	Meter      *power.Meter
	Cal        *power.Calibration
	TotalCores int
	// Scale is the workload scale factor passed to the application models.
	Scale float64
	// Seed drives workload randomness.
	Seed uint64
	// ScaleMemoryWithChip switches the simulator to system-wide DVFS
	// (the analytical model's assumption) for ablation A3.
	ScaleMemoryWithChip bool
	// Prefetch enables the hierarchy's next-line prefetcher (ablation A6).
	Prefetch bool
	// QuantizeLadder restricts operating points to the discrete 200 MHz
	// ladder steps instead of interpolating between them (the paper
	// interpolates, §4.2); enables measuring the quantization loss.
	QuantizeLadder bool
	// Faults, when non-nil, injects deterministic faults into every run:
	// stuck/noisy thermal sensors and DVFS failures feed the DTM
	// controller, transient ECC errors feed the cache hierarchy, and
	// run-level failures feed the sweep runner's retry logic. A nil
	// injector reproduces fault-free results bit for bit.
	Faults *faults.Injector
	// DTM, when non-nil, enables the dynamic thermal-management controller:
	// every RunApp additionally replays the run's activity through the
	// transient thermal network under the controller and attaches the
	// resulting DTMStats to the Measurement.
	DTM *DTMConfig
	// Obs, when non-nil, collects run metrics: every simulation publishes
	// its engine/cache/bus/DRAM counters (see cmp.Config.Metrics), and the
	// experiment layer adds run, DTM, and memo-cache counters. Clones share
	// the parent's registry (the struct copy keeps the pointer), so a
	// parallel sweep accumulates one combined snapshot; because everything
	// published concurrently is integer-valued, that snapshot is identical
	// for every worker count. Nil keeps the entire layer free.
	Obs *obs.Registry

	// memo, when non-nil, caches successful Measurements keyed by the full
	// run identity (see memoKey). Clones share their parent's cache, so a
	// parallel sweep dedupes the baseline/profiling runs repeated within
	// and across Scenario I and II. Enable with EnableMemo.
	memo *memoCache

	// Surrogate, when non-nil, receives every completed clean run (no
	// fault injection, no DTM) as a training sample for the closed-form
	// fast path (see package surrogate). Clones share the store the same
	// way they share the memo: the struct copy keeps the pointer, and the
	// store is concurrency-safe.
	Surrogate *surrogate.Store

	// Scenario, when non-nil, is the declarative chip description this
	// rig was built from (NewRigFromScenario); the apparatus fields above
	// are derived from it. Nil for flag-era rigs.
	Scenario *scenario.Scenario
	// Domains holds the chip's DVFS islands when the scenario declares
	// more than the chip-wide default; nil is the paper's single global
	// domain and leaves every legacy path untouched.
	Domains *dvfs.DomainSet
	// scenarioDigest is the scenario's cache identity, folded into memo
	// and surrogate keys (see ScenarioDigest). Empty for flag-era rigs
	// and baseline-equivalent scenarios so those share caches bit for
	// bit with each other.
	scenarioDigest string

	// fork, when non-nil, caches warm-state checkpoints keyed by
	// (app, n, seed, scale) so a sweep point forks from a completed
	// neighbor's recorded event logs instead of regenerating them (see
	// fork.go and cmp.Checkpoint). Shared by clones like the memo.
	// Enable with EnableFork; forked and cold runs are bit-identical.
	fork *forkCache
}

// Clone returns an independent copy of the rig for concurrent use. The
// immutable apparatus (technology, DVFS table, floorplan, thermal model,
// meter, calibration) is shared; mutable per-run state is not: the clone
// gets its own forked fault-injector streams (see faults.Injector.Fork)
// and its own copy of the DTM configuration. A memo cache, when enabled,
// IS shared — it is concurrency-safe and exists to dedupe runs across
// clones. The clone's fault schedule is deterministic in the parent's
// fault seed alone, never in scheduling order.
func (r *Rig) Clone() *Rig { return r.cloneFor("clone") }

// cloneFor is Clone with an explicit salt for the forked fault streams;
// the parallel sweep engine salts by (scenario, app) so every work item
// draws an independent, schedule-order-free fault stream.
func (r *Rig) cloneFor(salt string) *Rig {
	c := *r
	c.Faults = r.Faults.Fork(salt)
	if r.DTM != nil {
		dtm := *r.DTM
		c.DTM = &dtm
	}
	return &c
}

// CloneForScale returns a clone of the rig serving a different workload
// scale. Nothing in the apparatus depends on the scale — the floorplan,
// thermal model (and its factorization), meter, and calibration are all
// functions of the chip alone — so the clone shares every expensive
// structure and skips the rebuild-and-recalibrate cost of NewRig
// entirely. The memo and fork caches are shared too: both key on scale,
// so entries never cross scales. The server's rig pool uses this to make
// new-scale requests cost a struct copy instead of a calibration.
func (r *Rig) CloneForScale(scale float64) (*Rig, error) {
	if !(scale > 0) {
		return nil, fmt.Errorf("experiment: invalid scale %g", scale)
	}
	c := r.cloneFor(fmt.Sprintf("scale/%g", scale))
	c.Scale = scale
	return c, nil
}

// NewRig builds and calibrates the default 16-core 65 nm apparatus.
func NewRig(scale float64) (*Rig, error) {
	return NewCustomRig(16, scale)
}

// NewCustomRig builds and calibrates an apparatus for a chip with the
// given physical core count on the Table 1 die (used by the design-space
// exploration: the die area and thermal envelope stay fixed while the
// organization varies).
func NewCustomRig(totalCores int, scale float64) (*Rig, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("experiment: non-positive scale %g", scale)
	}
	tech := phys.Tech65()
	tab, err := dvfs.PentiumMStyle(tech)
	if err != nil {
		return nil, err
	}
	fp, err := floorplan.Chip(floorplan.DefaultChipConfig(totalCores))
	if err != nil {
		return nil, err
	}
	tm, err := thermal.NewModel(fp, thermal.DefaultParams())
	if err != nil {
		return nil, err
	}
	meter, err := power.NewMeter(tech)
	if err != nil {
		return nil, err
	}
	cal, err := meter.Calibrate(fp, tm, tab.Nominal())
	if err != nil {
		return nil, err
	}
	return &Rig{
		Tech: tech, Table: tab, FP: fp, TM: tm, Meter: meter, Cal: cal,
		TotalCores: totalCores, Scale: scale, Seed: 1,
	}, nil
}

// BudgetW returns the Scenario II power budget: the maximum nominal power
// consumption of a single core, from the calibration microbenchmark
// (paper §3.3).
func (r *Rig) BudgetW() float64 { return r.Cal.MaxOperationalW }

// pointFor picks an operating point at or below the target frequency,
// interpolated (the paper's method) or quantized to the ladder.
func (r *Rig) pointFor(freq float64) dvfs.OperatingPoint {
	if r.QuantizeLadder {
		return r.Table.Quantize(freq)
	}
	return r.Table.PointFor(freq)
}

// Measurement is one simulated run with its power/thermal evaluation.
type Measurement struct {
	App          string
	N            int
	Point        dvfs.OperatingPoint
	Seconds      float64
	Cycles       float64
	Instructions int64
	IPC          float64
	PowerW       float64
	DynW         float64
	StaticW      float64
	AvgCoreTempC float64
	PeakTempC    float64
	CoreDensity  float64 // W/m² over active core area, L2 excluded
	BusUtil      float64
	MemUtil      float64
	// ECCRetries counts injected transient cache errors corrected during
	// the run (0 without fault injection).
	ECCRetries int64
	// DTM holds the thermal-management controller's metrics when the rig
	// runs with a DTMConfig attached; nil otherwise.
	DTM *DTMStats
}

// RunApp simulates app on n cores at operating point p and evaluates
// power and temperature.
func (r *Rig) RunApp(app splash.App, n int, p dvfs.OperatingPoint) (*Measurement, error) {
	return r.RunAppCtx(context.Background(), app, n, p)
}

// runConfig assembles the simulator configuration for one run, threading
// the run's seed, the rig's fault injector and the caller's context into
// the engine.
func (r *Rig) runConfig(ctx context.Context, app splash.App, n int, p dvfs.OperatingPoint, seed uint64) cmp.Config {
	cfg := cmp.DefaultConfig(n, p)
	cfg.TotalCores = r.TotalCores
	cfg.Core = app.CoreConfig()
	cfg.Seed = seed
	cfg.ScaleMemoryWithChip = r.ScaleMemoryWithChip
	cfg.PrefetchNextLine = r.Prefetch
	// Background().Done() is nil, so the engine's poll stays free for
	// uncancellable runs.
	cfg.Ctx = ctx
	if r.Faults != nil {
		cfg.CacheFault = r.Faults
	}
	cfg.Metrics = r.Obs
	// Scenario chips with diverging cores (DVFS islands, big/little
	// classes) run per-core configs; homogeneous chips return nil here
	// and keep the uniform path.
	cfg.PerCore = r.perCoreConfigs(cfg.Core, n)
	return cfg
}

// RunAppCtx is RunApp under a context: cancellation aborts the simulation
// within one engine step. Failures downstream of argument validation are
// returned as *RunError values carrying the run's provenance.
func (r *Rig) RunAppCtx(ctx context.Context, app splash.App, n int, p dvfs.OperatingPoint) (*Measurement, error) {
	return r.RunAppSeeded(ctx, app, n, p, r.Seed)
}

// RunAppSeeded is RunAppCtx with the workload seed passed explicitly
// instead of read from the rig: seed studies and any other caller that
// varies the seed per run use it so the shared Rig is never mutated —
// the rig stays safe for concurrent cloned use. When a memo cache is
// enabled (EnableMemo) and fault injection is off, identical runs are
// served from the cache; fault injection bypasses the cache entirely
// because the injector's streams make runs order-dependent.
func (r *Rig) RunAppSeeded(ctx context.Context, app splash.App, n int, p dvfs.OperatingPoint, seed uint64) (*Measurement, error) {
	if !app.RunsOn(n) {
		return nil, fmt.Errorf("experiment: %s does not run on %d cores", app.Name, n)
	}
	if r.memo != nil && r.memoizable() {
		return r.memo.do(ctx, r.memoKeyFor(app.Name, n, p, seed), r.Obs, func() (*Measurement, error) {
			return r.runApp(ctx, app, n, p, seed)
		})
	}
	return r.runApp(ctx, app, n, p, seed)
}

// runApp is the uncached run path behind RunAppSeeded.
func (r *Rig) runApp(ctx context.Context, app splash.App, n int, p dvfs.OperatingPoint, seed uint64) (m *Measurement, err error) {
	fail := func(step string, err error) error {
		return &RunError{App: app.Name, N: n, Point: p, Seed: seed, Step: step, Err: err}
	}
	// A panic anywhere downstream becomes a typed error with the run's
	// provenance instead of unwinding the caller's sweep.
	defer func() {
		if v := recover(); v != nil {
			m, err = nil, fail("panic", &PanicError{Value: v, Stack: debug.Stack()})
		}
	}()
	if r.Faults != nil {
		// Run-level injected failures surface before the simulation: a
		// transient one is retryable (see RetryConfig), a hard one is not.
		if err := r.Faults.RunOutcome(app.Name, n); err != nil {
			return nil, fail("inject", err)
		}
	}
	cfg := r.runConfig(ctx, app, n, p, seed)
	prog := app.Program(r.Scale)
	var fk forkKey
	recording := false
	if r.fork != nil && r.memoizable() {
		// Warm-state forking: replay a completed neighbor's recorded
		// event logs when one exists for this (app, n, seed, scale)
		// column; otherwise run cold, and — if this run holds the
		// column's single recording reservation — capture the logs for
		// the neighbors still to come. Active fault injection skips this
		// entire block (memoizable is false), so faulty runs are never
		// recorded or replayed, only ever simulated from scratch.
		prog = r.fork.program(app, r.Scale)
		fk = forkKey{app: app.Name, n: n, seed: seed, scale: r.Scale}
		cp, reserve := r.fork.acquire(fk)
		if cp != nil && cp.CompatibleWith(prog, n, seed) == nil {
			cfg.Replay = cp
			r.Obs.VolatileCounter("sweep_fork_hits").Add(1)
			r.Obs.VolatileHistogram("sweep_fork_distance_rungs", forkDistanceBounds).
				Observe(rungDistance(r.Table, cp.Point(), p))
		} else {
			r.Obs.VolatileCounter("sweep_fork_misses").Add(1)
			if reserve {
				cfg.Record = true
				recording = true
				// The reservation must not leak if the run fails or
				// panics: later runs of this column would then never
				// record. fulfill flips recording off on success below.
				defer func() {
					if recording {
						r.fork.abandon(fk)
					}
				}()
			}
		}
	}
	res, err := cmp.Run(prog, cfg)
	if err != nil {
		return nil, fail("simulate", err)
	}
	if recording && res.Checkpoint != nil {
		r.fork.fulfill(fk, res.Checkpoint)
		recording = false
	}
	pw, err := r.evaluateRun(res.Activity, res.Seconds, int64(res.Cycles)+1, p, n)
	if err != nil {
		return nil, fail("evaluate", err)
	}
	m = &Measurement{
		App: app.Name, N: n, Point: p,
		Seconds: res.Seconds, Cycles: res.Cycles, Instructions: res.Instructions,
		IPC: res.IPC(), PowerW: pw.TotalW, DynW: pw.DynW, StaticW: pw.StaticW,
		AvgCoreTempC: pw.AvgCoreTemp, PeakTempC: pw.PeakTempC, CoreDensity: pw.CoreDensity,
		BusUtil: res.BusUtilization, MemUtil: res.MemUtilization,
		ECCRetries: res.CacheStats.ECCRetries,
	}
	if r.DTM != nil {
		st, err := r.runDTM(ctx, app, n, p, res.Cycles, seed)
		if err != nil {
			return nil, fail("dtm", err)
		}
		m.DTM = st
		r.Obs.Counter("dtm_emergencies_total").Add(int64(st.Emergencies))
		r.Obs.Counter("dtm_transitions_total").Add(int64(st.Transitions))
		r.Obs.Counter("dtm_failed_transitions_total").Add(int64(st.FailedTransitions))
		r.Obs.Histogram("dtm_throttle_residency", dtmResidencyBounds).Observe(st.ThrottleResidency)
		if st.FloorHit {
			r.Obs.Counter("dtm_floor_hits_total").Add(1)
		}
	}
	r.Obs.Counter("experiment_runs_total").Add(1)
	r.feedSurrogate(m)
	return m, nil
}

// dtmResidencyBounds bins the fraction of a run spent throttled (a
// per-run throttle-interval summary: 0 means the controller never bit).
var dtmResidencyBounds = []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75}

// ScenarioIRow is one configuration of the Fig. 3 experiment.
type ScenarioIRow struct {
	N int
	// NominalEff is ε_n(N) measured in the nominal-frequency profiling
	// pass (Fig. 3, first panel).
	NominalEff float64
	// ActualSpeedup is T_1 / T_N at the Eq. 7 operating point (second
	// panel; ≈1 by construction, >1 for memory-bound apps).
	ActualSpeedup float64
	// NormPower is P_N / P_1 (third panel).
	NormPower float64
	// NormDensity is core power density normalized to N=1 (fourth panel).
	NormDensity float64
	// AvgTempC is the average active-core temperature (fifth panel).
	AvgTempC float64
	// Point is the chosen operating point.
	Point dvfs.OperatingPoint
	// Scaled is the measurement at the scaled point.
	Scaled *Measurement
}

// ScenarioIResult holds one application's Fig. 3 data.
type ScenarioIResult struct {
	App      string
	Baseline *Measurement // single core at nominal V/f
	Rows     []ScenarioIRow
	// DTM aggregates the thermal-management metrics over every run of the
	// scenario when the rig has a DTMConfig attached; nil otherwise.
	DTM *DTMSummary
}

// ScenarioI reproduces the paper's §4.1 experiment for one application:
// profile at nominal frequency for every core count, derive each
// configuration's target frequency from Eq. 7, re-simulate at the scaled
// operating point, and report the five Fig. 3 panels.
func (r *Rig) ScenarioI(app splash.App, coreCounts []int) (*ScenarioIResult, error) {
	return r.ScenarioICtx(context.Background(), app, coreCounts)
}

// ScenarioICtx is ScenarioI under a context: cancellation aborts the
// in-flight simulation within one engine step and stops the scenario.
func (r *Rig) ScenarioICtx(ctx context.Context, app splash.App, coreCounts []int) (*ScenarioIResult, error) {
	if len(coreCounts) == 0 {
		return nil, errors.New("experiment: no core counts")
	}
	base, err := r.RunAppCtx(ctx, app, 1, r.Table.Nominal())
	if err != nil {
		return nil, err
	}
	out := &ScenarioIResult{App: app.Name, Baseline: base}
	for _, n := range coreCounts {
		if n == 1 || !app.RunsOn(n) {
			continue
		}
		prof, err := r.RunAppCtx(ctx, app, n, r.Table.Nominal())
		if err != nil {
			return nil, err
		}
		eff := base.Seconds / (float64(n) * prof.Seconds)
		// Eq. 7: f_N = f_1 / (N · ε_n).
		target := r.Table.Nominal().Freq / (float64(n) * eff)
		point := r.pointFor(target)
		scaled, err := r.RunAppCtx(ctx, app, n, point)
		if err != nil {
			return nil, err
		}
		row := ScenarioIRow{
			N:             n,
			NominalEff:    eff,
			ActualSpeedup: base.Seconds / scaled.Seconds,
			NormPower:     scaled.PowerW / base.PowerW,
			AvgTempC:      scaled.AvgCoreTempC,
			Point:         point,
			Scaled:        scaled,
		}
		if base.CoreDensity > 0 {
			row.NormDensity = scaled.CoreDensity / base.CoreDensity
		}
		out.Rows = append(out.Rows, row)
	}
	if r.DTM != nil {
		ms := []*Measurement{base}
		for _, row := range out.Rows {
			ms = append(ms, row.Scaled)
		}
		out.DTM = summarizeDTM(ms)
	}
	return out, nil
}

// ScenarioIIRow is one configuration of the Fig. 4 experiment.
type ScenarioIIRow struct {
	N int
	// NominalSpeedup ignores the power budget (profiling pass).
	NominalSpeedup float64
	// ActualSpeedup is the best speedup within the budget.
	ActualSpeedup float64
	// Point is the chosen operating point.
	Point dvfs.OperatingPoint
	// PowerW is the measured power at that point.
	PowerW float64
	// AtNominal reports that the budget was not binding (the paper's
	// Radix observation: low-power apps run flat out up to ~8 cores).
	AtNominal bool
	// Seconds is the modeled run time at the chosen point (the denominator
	// of ActualSpeedup), kept so run manifests can report modeled time.
	Seconds float64
}

// ScenarioIIResult holds one application's Fig. 4 data.
type ScenarioIIResult struct {
	App     string
	BudgetW float64
	// BaselineSeconds is the single-core nominal run time (the numerator of
	// every speedup in Rows).
	BaselineSeconds float64
	Rows            []ScenarioIIRow
	// DTM aggregates the thermal-management metrics over every run of the
	// scenario when the rig has a DTMConfig attached; nil otherwise.
	DTM *DTMSummary
}

// profilePoints is the frequency grid of the Scenario II off-line
// profiling pass. The paper profiles every 200 MHz; we profile a coarser
// monotone grid and interpolate linearly between points (as the paper does
// between its profiled values).
func (r *Rig) profilePoints() []dvfs.OperatingPoint {
	pts := r.Table.Points()
	var out []dvfs.OperatingPoint
	for i := 0; i < len(pts); i += 3 {
		out = append(out, pts[i])
	}
	if last := pts[len(pts)-1]; len(out) == 0 || out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}

// ScenarioII reproduces the paper's §4.2 experiment for one application:
// for each core count, find via profiling the highest operating point
// whose measured power fits the single-core budget, then measure the
// actual speedup there; the nominal speedup comes from the unconstrained
// profiling pass.
func (r *Rig) ScenarioII(app splash.App, coreCounts []int) (*ScenarioIIResult, error) {
	return r.ScenarioIICtx(context.Background(), app, coreCounts)
}

// ScenarioIICtx is ScenarioII under a context: cancellation aborts the
// in-flight simulation within one engine step and stops the scenario.
func (r *Rig) ScenarioIICtx(ctx context.Context, app splash.App, coreCounts []int) (*ScenarioIIResult, error) {
	if len(coreCounts) == 0 {
		return nil, errors.New("experiment: no core counts")
	}
	budget := r.BudgetW()
	base, err := r.RunAppCtx(ctx, app, 1, r.Table.Nominal())
	if err != nil {
		return nil, err
	}
	out := &ScenarioIIResult{App: app.Name, BudgetW: budget, BaselineSeconds: base.Seconds}
	kept := []*Measurement{base}
	for _, n := range coreCounts {
		if !app.RunsOn(n) {
			continue
		}
		nom, err := r.RunAppCtx(ctx, app, n, r.Table.Nominal())
		if err != nil {
			return nil, err
		}
		row := ScenarioIIRow{N: n, NominalSpeedup: base.Seconds / nom.Seconds}
		if nom.PowerW <= budget {
			// Budget not binding: run flat out.
			row.ActualSpeedup = row.NominalSpeedup
			row.Point = r.Table.Nominal()
			row.PowerW = nom.PowerW
			row.AtNominal = true
			row.Seconds = nom.Seconds
			out.Rows = append(out.Rows, row)
			kept = append(kept, nom)
			continue
		}
		// Profile power across the frequency grid and invert for the
		// budget.
		var fx, py []float64
		for _, p := range r.profilePoints() {
			meas, err := r.RunAppCtx(ctx, app, n, p)
			if err != nil {
				return nil, err
			}
			fx = append(fx, p.Freq)
			py = append(py, meas.PowerW)
		}
		series, err := stats.NewSeries(fx, py)
		if err != nil {
			return nil, err
		}
		targetFreq, err := series.InvertMonotone(budget)
		if err != nil {
			// Even the lowest point exceeds the budget: pin to the floor.
			targetFreq = r.Table.Min().Freq
		}
		point := r.pointFor(targetFreq)
		final, err := r.RunAppCtx(ctx, app, n, point)
		if err != nil {
			return nil, err
		}
		// Guard: if interpolation undershot and the measured power still
		// exceeds the budget, step down the ladder until it fits.
		for final.PowerW > budget*1.02 && point.Freq > r.Table.Min().Freq {
			point = r.Table.Quantize(point.Freq * 0.999) // next step down
			if final, err = r.RunAppCtx(ctx, app, n, point); err != nil {
				return nil, err
			}
		}
		row.ActualSpeedup = base.Seconds / final.Seconds
		row.Point = point
		row.PowerW = final.PowerW
		row.Seconds = final.Seconds
		out.Rows = append(out.Rows, row)
		kept = append(kept, final)
	}
	if r.DTM != nil {
		out.DTM = summarizeDTM(kept)
	}
	return out, nil
}

// ModeledSeconds sums the simulated time of the measurements a Scenario I
// result reports (baseline plus each scaled configuration; profiling runs
// are not retained and not counted). It is a deterministic function of the
// result, which is what run manifests need.
func (s *ScenarioIResult) ModeledSeconds() float64 {
	if s == nil {
		return 0
	}
	total := 0.0
	if s.Baseline != nil {
		total += s.Baseline.Seconds
	}
	for _, row := range s.Rows {
		if row.Scaled != nil {
			total += row.Scaled.Seconds
		}
	}
	return total
}

// ModeledSeconds sums the simulated time a Scenario II result reports
// (baseline plus each row's chosen-point run); see
// (*ScenarioIResult).ModeledSeconds.
func (s *ScenarioIIResult) ModeledSeconds() float64 {
	if s == nil {
		return 0
	}
	total := s.BaselineSeconds
	for _, row := range s.Rows {
		total += row.Seconds
	}
	return total
}
