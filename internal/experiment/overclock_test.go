package experiment

import "testing"

func TestOverclockStudyRadix(t *testing.T) {
	rig := testRig(t)
	study, err := rig.Overclock(app(t, "Radix"), 2, []float64{1.125, 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 3 {
		t.Fatalf("rows=%d", len(study.Rows))
	}
	base := study.Rows[0]
	if base.FreqMult != 1 || base.Speedup != 1 {
		t.Fatalf("baseline row %+v", base)
	}
	// Radix at 2 cores is power-thrifty: nominal run fits the budget, and
	// modest overclocking should too (the paper's premise).
	if !base.WithinBudget {
		t.Error("Radix at 2 cores should fit the budget at nominal")
	}
	for _, row := range study.Rows[1:] {
		if row.Volt <= rig.Tech.Vdd {
			t.Errorf("overclocked point at mult %g not overdriven (V=%g)", row.FreqMult, row.Volt)
		}
		if row.Speedup <= 1 {
			t.Errorf("no speedup at mult %g: %g", row.FreqMult, row.Speedup)
		}
		// The memory-gap offset: speedup lags the frequency multiplier.
		if row.GapEfficiency >= 0.99 {
			t.Errorf("mult %g: gap efficiency %g — memory offset missing", row.FreqMult, row.GapEfficiency)
		}
		if row.PowerW <= base.PowerW {
			t.Errorf("overclocking did not raise power: %g vs %g", row.PowerW, base.PowerW)
		}
	}
}

func TestOverclockGapOrdering(t *testing.T) {
	// Compute-bound FMM converts frequency into performance much better
	// than memory-bound Radix.
	rig := testRig(t)
	fmm, err := rig.Overclock(app(t, "FMM"), 1, []float64{1.25})
	if err != nil {
		t.Fatal(err)
	}
	radix, err := rig.Overclock(app(t, "Radix"), 1, []float64{1.25})
	if err != nil {
		t.Fatal(err)
	}
	fe := fmm.Rows[len(fmm.Rows)-1].GapEfficiency
	re := radix.Rows[len(radix.Rows)-1].GapEfficiency
	if fe <= re {
		t.Errorf("FMM gap efficiency %g should exceed Radix %g", fe, re)
	}
}

func TestOverclockValidation(t *testing.T) {
	rig := testRig(t)
	a := app(t, "FFT")
	if _, err := rig.Overclock(a, 1, nil); err == nil {
		t.Error("accepted empty multipliers")
	}
	if _, err := rig.Overclock(a, 1, []float64{0.9}); err == nil {
		t.Error("accepted sub-unity multiplier")
	}
	if _, err := rig.Overclock(a, 3, []float64{1.125}); err == nil {
		t.Error("accepted invalid core count for power-of-two app")
	}
}
