package experiment

import (
	"math"
	"testing"

	"cmppower/internal/phys"
	"cmppower/internal/splash"
)

// testRig builds a small-scale rig shared by the tests in this file.
func testRig(t *testing.T) *Rig {
	t.Helper()
	rig, err := NewRig(0.15)
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func app(t *testing.T, name string) splash.App {
	t.Helper()
	a, err := splash.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRigValidation(t *testing.T) {
	if _, err := NewRig(0); err == nil {
		t.Error("accepted zero scale")
	}
	if _, err := NewRig(-1); err == nil {
		t.Error("accepted negative scale")
	}
}

func TestRigCalibration(t *testing.T) {
	rig := testRig(t)
	if rig.BudgetW() <= 0 {
		t.Fatalf("budget %g", rig.BudgetW())
	}
	if rig.Cal.Renorm <= 0 {
		t.Fatal("renormalization not applied")
	}
	if rig.Table.Nominal().Freq != 3.2e9 {
		t.Fatalf("nominal frequency %g", rig.Table.Nominal().Freq)
	}
}

func TestRunAppBasics(t *testing.T) {
	rig := testRig(t)
	m, err := rig.RunApp(app(t, "FFT"), 4, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds <= 0 || m.PowerW <= 0 || m.Instructions <= 0 {
		t.Fatalf("degenerate measurement %+v", m)
	}
	if m.AvgCoreTempC < phys.AmbientTempC || m.AvgCoreTempC > phys.MaxDieTempC+20 {
		t.Errorf("temperature %g implausible", m.AvgCoreTempC)
	}
	if m.DynW+m.StaticW-m.PowerW > 1e-9*m.PowerW {
		t.Error("power split inconsistent")
	}
}

func TestRunAppRespectsThreadRestrictions(t *testing.T) {
	rig := testRig(t)
	if _, err := rig.RunApp(app(t, "LU"), 6, rig.Table.Nominal()); err == nil {
		t.Error("LU on 6 cores should be rejected (power-of-two only)")
	}
}

func TestScenarioIShape(t *testing.T) {
	rig := testRig(t)
	res, err := rig.ScenarioI(app(t, "Water-Nsq"), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline == nil || res.Baseline.N != 1 {
		t.Fatal("missing single-core baseline")
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (N=1 is the baseline)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NominalEff <= 0 || row.NominalEff > 1.5 {
			t.Errorf("N=%d: efficiency %g implausible", row.N, row.NominalEff)
		}
		// The performance target is the baseline; the scaled run must not
		// be slower than ~20% below it (discretization slack), and for
		// this chip-level-DVFS system it is usually faster.
		if row.ActualSpeedup < 0.8 {
			t.Errorf("N=%d: actual speedup %g below the performance target", row.N, row.ActualSpeedup)
		}
		// Frequency must be scaled down from nominal for N >= 2.
		if row.Point.Freq >= rig.Table.Nominal().Freq {
			t.Errorf("N=%d: operating point not scaled (%v)", row.N, row.Point)
		}
		if row.NormPower <= 0 {
			t.Errorf("N=%d: no power measured", row.N)
		}
		if row.AvgTempC < phys.AmbientTempC-1 {
			t.Errorf("N=%d: temperature below ambient", row.N)
		}
	}
}

func TestScenarioIPowerSavings(t *testing.T) {
	// A scalable compute app must save power at 4-8 cores and reduce power
	// density drastically — the paper's §4.1 headline.
	rig := testRig(t)
	res, err := rig.ScenarioI(app(t, "Barnes"), []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.NormPower >= 1 {
			t.Errorf("N=%d: normalized power %g, expected savings", row.N, row.NormPower)
		}
		if row.NormDensity >= 0.5 {
			t.Errorf("N=%d: power density %g, expected a sharp drop", row.N, row.NormDensity)
		}
		if row.AvgTempC >= res.Baseline.AvgCoreTempC {
			t.Errorf("N=%d: temperature did not fall (%g vs %g)", row.N, row.AvgTempC, res.Baseline.AvgCoreTempC)
		}
	}
}

func TestScenarioIMemoryBoundSpeedup(t *testing.T) {
	// Memory-bound applications get an actual speedup well above 1 in
	// Scenario I because the 75 ns memory shrinks in cycles at the scaled
	// frequency (paper §4.1).
	rig := testRig(t)
	res, err := rig.ScenarioI(app(t, "Radix"), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if got := res.Rows[0].ActualSpeedup; got < 1.1 {
		t.Errorf("Radix actual speedup %g, want > 1.1 (memory-gap effect)", got)
	}
}

func TestScenarioIEmptyCounts(t *testing.T) {
	rig := testRig(t)
	if _, err := rig.ScenarioI(app(t, "FFT"), nil); err == nil {
		t.Error("accepted empty core counts")
	}
	if _, err := rig.ScenarioII(app(t, "FFT"), nil); err == nil {
		t.Error("accepted empty core counts")
	}
}

func TestScenarioIIBudgetAndGap(t *testing.T) {
	rig := testRig(t)
	res, err := rig.ScenarioII(app(t, "FMM"), []int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ActualSpeedup > row.NominalSpeedup*1.02 {
			t.Errorf("N=%d: actual %g above nominal %g", row.N, row.ActualSpeedup, row.NominalSpeedup)
		}
		if !row.AtNominal && row.PowerW > res.BudgetW*1.05 {
			t.Errorf("N=%d: power %g exceeds budget %g", row.N, row.PowerW, res.BudgetW)
		}
	}
	// FMM at 8 cores cannot run at nominal within a single-core budget.
	last := res.Rows[2]
	if last.AtNominal {
		t.Error("compute-bound FMM at 8 cores should be budget-limited")
	}
	if last.ActualSpeedup >= last.NominalSpeedup {
		t.Error("expected a nominal-vs-actual gap for FMM at 8 cores")
	}
}

func TestScenarioIIRadixRunsAtNominal(t *testing.T) {
	// The paper's Radix observation: a power-thrifty memory-bound app fits
	// the budget at nominal V/f for moderate core counts.
	rig := testRig(t)
	res, err := rig.ScenarioII(app(t, "Radix"), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.AtNominal {
			t.Errorf("Radix at N=%d should run at nominal within budget (power %g, budget %g)",
				row.N, row.PowerW, res.BudgetW)
		}
		if math.Abs(row.ActualSpeedup-row.NominalSpeedup) > 1e-9 {
			t.Errorf("N=%d: at-nominal rows must have actual == nominal", row.N)
		}
	}
}

func TestScenarioIIGapOrdering(t *testing.T) {
	// The gap is most significant for the compute-intensive app (FMM) and
	// least for the memory-bound one (Radix) — paper Fig. 4.
	rig := testRig(t)
	gap := func(name string) float64 {
		res, err := rig.ScenarioII(app(t, name), []int{8})
		if err != nil {
			t.Fatal(err)
		}
		row := res.Rows[0]
		return (row.NominalSpeedup - row.ActualSpeedup) / row.NominalSpeedup
	}
	fmm, radix := gap("FMM"), gap("Radix")
	if fmm <= radix {
		t.Errorf("FMM relative gap %g should exceed Radix %g", fmm, radix)
	}
}

func TestSystemWideDVFSAblation(t *testing.T) {
	// With system-wide scaling, Scenario I's memory-gap bonus disappears:
	// actual speedup collapses toward 1.
	chipOnly := testRig(t)
	system, err := NewRig(0.15)
	if err != nil {
		t.Fatal(err)
	}
	system.ScaleMemoryWithChip = true

	a := app(t, "Radix")
	r1, err := chipOnly.ScenarioI(a, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := system.ScenarioI(a, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) == 0 || len(r2.Rows) == 0 {
		t.Fatal("missing rows")
	}
	if r2.Rows[0].ActualSpeedup >= r1.Rows[0].ActualSpeedup {
		t.Errorf("system-wide DVFS should remove the memory-gap bonus: %g vs %g",
			r2.Rows[0].ActualSpeedup, r1.Rows[0].ActualSpeedup)
	}
}

func TestQuantizedLadderCostsPerformance(t *testing.T) {
	// Scenario II on the discrete ladder can never beat the interpolated
	// ladder: quantization only ever steps down.
	interp := testRig(t)
	quant, err := NewRig(0.15)
	if err != nil {
		t.Fatal(err)
	}
	quant.QuantizeLadder = true
	a := app(t, "FMM")
	ri, err := interp.ScenarioII(a, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	rq, err := quant.ScenarioII(a, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if rq.Rows[0].ActualSpeedup > ri.Rows[0].ActualSpeedup*1.001 {
		t.Errorf("quantized speedup %g beats interpolated %g",
			rq.Rows[0].ActualSpeedup, ri.Rows[0].ActualSpeedup)
	}
	// The chosen quantized point sits on a 200 MHz step.
	fMHz := rq.Rows[0].Point.Freq / 1e6
	if fMHz != float64(int(fMHz/200))*200 {
		t.Errorf("quantized point %g MHz not on the ladder", fMHz)
	}
}
