package experiment

import (
	"fmt"

	"cmppower/internal/cache"
	"cmppower/internal/cmp"
	"cmppower/internal/splash"
)

// CacheSweepRow is one (L1 size, core count) measurement.
type CacheSweepRow struct {
	L1KB       int
	N          int
	MissRate   float64 // L1D misses per access
	CPI        float64 // aggregate cycles per instruction × N (per-core CPI)
	Seconds    float64
	NominalEff float64 // vs the same L1 size at N=1
}

// CacheSweep measures an application's sensitivity to L1 capacity across
// core counts. The paper's superlinear-efficiency story rests on aggregate
// L1 capacity (ε_n > 1 when the per-core share of the working set starts
// fitting); this sweep exposes exactly that interaction.
type CacheSweep struct {
	App  string
	Rows []CacheSweepRow
}

// CacheSweepL1 runs app across l1KBs × coreCounts at nominal V/f.
func (r *Rig) CacheSweepL1(app splash.App, l1KBs []int, coreCounts []int) (*CacheSweep, error) {
	if len(l1KBs) == 0 || len(coreCounts) == 0 {
		return nil, fmt.Errorf("experiment: empty cache sweep")
	}
	out := &CacheSweep{App: app.Name}
	p := r.Table.Nominal()
	for _, kb := range l1KBs {
		if kb < 1 {
			return nil, fmt.Errorf("experiment: L1 size %d KB", kb)
		}
		var baseSeconds float64
		for _, n := range coreCounts {
			if !app.RunsOn(n) {
				continue
			}
			cfg := cmp.DefaultConfig(n, p)
			cfg.TotalCores = r.TotalCores
			cfg.Core = app.CoreConfig()
			cfg.Seed = r.Seed
			cc := cache.DefaultConfig(n, p.Freq)
			cc.L1 = cache.Geometry{SizeBytes: kb << 10, LineBytes: 64, Ways: 2}
			cfg.CacheOverride = &cc
			res, err := cmp.Run(app.Program(r.Scale), cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s L1=%dKB N=%d: %w", app.Name, kb, n, err)
			}
			var acc, miss int64
			for c := 0; c < n; c++ {
				acc += res.CacheStats.L1DAccess[c]
				miss += res.CacheStats.L1DMiss[c]
			}
			row := CacheSweepRow{L1KB: kb, N: n, Seconds: res.Seconds}
			if acc > 0 {
				row.MissRate = float64(miss) / float64(acc)
			}
			if res.Instructions > 0 {
				row.CPI = res.Cycles * float64(n) / float64(res.Instructions)
			}
			if n == 1 {
				baseSeconds = res.Seconds
			}
			if baseSeconds > 0 {
				row.NominalEff = baseSeconds / (float64(n) * res.Seconds)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	if len(out.Rows) == 0 {
		return nil, fmt.Errorf("experiment: %s runs on none of the requested core counts", app.Name)
	}
	return out, nil
}
