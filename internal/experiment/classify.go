package experiment

import (
	"fmt"

	"cmppower/internal/cmp"
	"cmppower/internal/splash"
)

// CPIStack breaks one run's cycles per instruction into where the time
// went — the standard first-look characterization of a workload.
type CPIStack struct {
	App string
	N   int
	CPI float64
	// Shares sum to ~1: fraction of total core cycles in each bucket.
	ComputeShare float64
	MemShare     float64
	BranchShare  float64
	FetchShare   float64
	IdleShare    float64 // barrier/lock waiting
	// Class is the derived qualitative label.
	Class WorkloadClass
}

// WorkloadClass is a coarse workload category.
type WorkloadClass string

// Workload classes.
const (
	ComputeBound WorkloadClass = "compute-bound"
	MemoryBound  WorkloadClass = "memory-bound"
	SyncBound    WorkloadClass = "sync-bound"
	Mixed        WorkloadClass = "mixed"
)

// classify derives the label from the shares.
func classify(compute, mem, idle float64) WorkloadClass {
	switch {
	case idle > 0.35:
		return SyncBound
	case mem > 0.55:
		return MemoryBound
	case compute > 0.55:
		return ComputeBound
	}
	return Mixed
}

// Classify runs app on n cores at nominal V/f and returns its CPI stack.
func (r *Rig) Classify(app splash.App, n int) (*CPIStack, error) {
	if !app.RunsOn(n) {
		return nil, fmt.Errorf("experiment: %s does not run on %d cores", app.Name, n)
	}
	cfg := cmp.DefaultConfig(n, r.Table.Nominal())
	cfg.TotalCores = r.TotalCores
	cfg.Core = app.CoreConfig()
	cfg.Seed = r.Seed
	cfg.ScaleMemoryWithChip = r.ScaleMemoryWithChip
	cfg.PrefetchNextLine = r.Prefetch
	res, err := cmp.Run(app.Program(r.Scale), cfg)
	if err != nil {
		return nil, err
	}
	var compute, mem, branch, fetch, idle, total float64
	var instr int64
	for _, st := range res.PerCore {
		compute += st.ComputeCycles
		mem += st.MemCycles
		branch += st.BranchCycles
		fetch += st.FetchCycles
		idle += st.IdleCycles
		total += st.FinishClock
		instr += st.Instructions
	}
	if total <= 0 || instr <= 0 {
		return nil, fmt.Errorf("experiment: empty run for %s", app.Name)
	}
	out := &CPIStack{
		App: app.Name, N: n,
		CPI:          total / float64(instr) * float64(n),
		ComputeShare: compute / total,
		MemShare:     mem / total,
		BranchShare:  branch / total,
		FetchShare:   fetch / total,
		IdleShare:    idle / total,
	}
	out.Class = classify(out.ComputeShare, out.MemShare, out.IdleShare)
	return out, nil
}
