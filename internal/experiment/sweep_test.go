package experiment

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cmppower/internal/faults"
	"cmppower/internal/splash"
)

// fastRetry keeps the retry tests from sleeping.
func fastRetry(attempts int) RetryConfig {
	return RetryConfig{Attempts: attempts, Backoff: time.Microsecond, MaxBackoff: time.Millisecond}
}

func sweepApps(t *testing.T) []splash.App {
	t.Helper()
	return []splash.App{app(t, "FFT"), app(t, "Radix"), app(t, "Water-Nsq")}
}

func injector(t *testing.T, cfg faults.Config) *faults.Injector {
	t.Helper()
	inj, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestSweepCompletesPastHardFailures(t *testing.T) {
	rig := testRig(t)
	// Every run fails hard: the sweep must still visit every app and
	// report a typed error for each, never abort the loop.
	rig.Faults = injector(t, faults.Config{Seed: 3, RunHardProb: 1})
	apps := sweepApps(t)
	out, err := rig.SweepScenarioI(context.Background(), apps, []int{1, 2}, fastRetry(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(apps) {
		t.Fatalf("sweep visited %d of %d apps", len(out), len(apps))
	}
	for _, o := range out {
		var re *RunError
		if !errors.As(o.Err, &re) {
			t.Fatalf("%s: want *RunError, got %T: %v", o.App, o.Err, o.Err)
		}
		if re.App != o.App || re.Step != "inject" || re.Seed != rig.Seed {
			t.Errorf("%s: provenance %+v", o.App, re)
		}
		var he *faults.HardError
		if !errors.As(o.Err, &he) {
			t.Errorf("%s: cause is not a hard fault: %v", o.App, o.Err)
		}
		if faults.IsTransient(o.Err) {
			t.Errorf("%s: hard fault classified transient", o.App)
		}
		if o.Attempts != 1 {
			t.Errorf("%s: hard fault retried (%d attempts)", o.App, o.Attempts)
		}
		if o.I != nil {
			t.Errorf("%s: failed outcome carries a result", o.App)
		}
	}
}

func TestSweepMixedFailuresKeepHealthyApps(t *testing.T) {
	rig := testRig(t)
	// A moderate hard-failure rate with a fixed seed: deterministic, some
	// apps die, the rest complete. (The rates below were checked against
	// this seed; the schedule is reproducible by construction.)
	rig.Faults = injector(t, faults.Config{Seed: 5, RunHardProb: 0.25})
	apps := sweepApps(t)
	out, err := rig.SweepScenarioII(context.Background(), apps, []int{1, 2}, fastRetry(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(apps) {
		t.Fatalf("sweep visited %d of %d apps", len(out), len(apps))
	}
	var ok, failed int
	for _, o := range out {
		if o.Err != nil {
			failed++
			var re *RunError
			if !errors.As(o.Err, &re) {
				t.Errorf("%s: untyped failure %v", o.App, o.Err)
			}
			continue
		}
		ok++
		if o.II == nil || len(o.II.Rows) == 0 {
			t.Errorf("%s: successful outcome without rows", o.App)
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("want a mix of outcomes for this seed, got %d ok / %d failed", ok, failed)
	}
}

func TestSweepRetriesTransientFailures(t *testing.T) {
	rig := testRig(t)
	rig.Faults = injector(t, faults.Config{Seed: 9, RunTransientProb: 0.3})
	apps := sweepApps(t)
	out, err := rig.SweepScenarioI(context.Background(), apps, []int{1, 2}, fastRetry(10))
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for _, o := range out {
		if o.Err != nil {
			t.Fatalf("%s: transient faults exhausted %d attempts: %v", o.App, o.Attempts, o.Err)
		}
		if o.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no app needed a retry; transient rate too low for this seed")
	}
}

func TestSweepStopsOnCancelledContext(t *testing.T) {
	rig := testRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := rig.SweepScenarioI(ctx, sweepApps(t), []int{1, 2}, fastRetry(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("cancelled sweep still produced %d outcomes", len(out))
	}
}

func TestRunAppCtxCancellationAbortsSimulation(t *testing.T) {
	rig := testRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := rig.RunAppCtx(ctx, app(t, "Ocean"), 4, rig.Table.Nominal())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the chain, got %v", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Step != "simulate" {
		t.Fatalf("want *RunError at the simulate step, got %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancellation took %v", el)
	}
}

func TestZeroFaultConfigIsBitIdentical(t *testing.T) {
	plain := testRig(t)
	wired := testRig(t)
	// An injector with every rate at zero must not perturb anything: the
	// measurement is the same struct, field for field.
	wired.Faults = injector(t, faults.Config{Seed: 42})
	a := app(t, "FFT")
	for _, n := range []int{1, 4} {
		m1, err := plain.RunApp(a, n, plain.Table.Nominal())
		if err != nil {
			t.Fatal(err)
		}
		m2, err := wired.RunApp(a, n, wired.Table.Nominal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("N=%d: zero-fault run diverged:\nplain %+v\nwired %+v", n, m1, m2)
		}
	}
	if got := wired.Faults.Injected(); got != 0 {
		t.Errorf("zero-rate injector reported %d injections", got)
	}
}

func TestSameSeedSameFaultMetrics(t *testing.T) {
	run := func() (*Measurement, string) {
		rig := testRig(t)
		rig.Faults = injector(t, faults.Config{Seed: 77, CacheTransientProb: 1e-2, SensorNoiseSigmaC: 2})
		m, err := rig.RunApp(app(t, "FFT"), 4, rig.Table.Nominal())
		if err != nil {
			t.Fatal(err)
		}
		return m, rig.Faults.Digest()
	}
	m1, d1 := run()
	m2, d2 := run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", m1, m2)
	}
	if d1 != d2 {
		t.Fatalf("fault schedules differ:\n%s\n%s", d1, d2)
	}
	if m1.ECCRetries == 0 {
		t.Error("cache fault rate injected nothing; test exercises no faults")
	}
}

func TestPanicBecomesTypedRunError(t *testing.T) {
	rig := testRig(t)
	rig.Meter = nil // nil meter panics inside the evaluate step
	_, err := rig.RunApp(app(t, "FFT"), 2, rig.Table.Nominal())
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if re.Step != "panic" || re.App != "FFT" || re.N != 2 {
		t.Errorf("provenance %+v", re)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause is not a *PanicError: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
}

func TestAttemptSemantics(t *testing.T) {
	ctx := context.Background()
	rc := fastRetry(3)
	calls := 0
	// Transient errors burn all attempts.
	n, err := attempt(ctx, rc, func() error {
		calls++
		return &faults.TransientError{App: "x", N: 1, Seq: int64(calls)}
	})
	if n != 3 || !faults.IsTransient(err) {
		t.Fatalf("attempts=%d err=%v", n, err)
	}
	// Non-transient errors do not retry.
	n, err = attempt(ctx, rc, func() error { return errors.New("hard") })
	if n != 1 || err == nil {
		t.Fatalf("attempts=%d err=%v", n, err)
	}
	// Panics are captured, not retried.
	n, err = attempt(ctx, rc, func() error { panic("boom") })
	var pe *PanicError
	if n != 1 || !errors.As(err, &pe) {
		t.Fatalf("attempts=%d err=%v", n, err)
	}
	// Success on a later attempt stops the loop.
	calls = 0
	n, err = attempt(ctx, rc, func() error {
		if calls++; calls < 2 {
			return &faults.TransientError{App: "x", N: 1, Seq: 1}
		}
		return nil
	})
	if n != 2 || err != nil {
		t.Fatalf("attempts=%d err=%v", n, err)
	}
}
