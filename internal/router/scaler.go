// The autoscaler control loop and the chaos kill/respawn loop — the two
// places fleet membership changes at runtime. Both run on loopCtx and
// are joined by Shutdown before any backend is torn down.
//
// Scaling signals come from the shards themselves: every ScaleInterval
// the loop scrapes each live shard's /metrics for its queue depth gauge
// and its cumulative admission-rejection counter (the source of the
// Retry-After 429s clients see). Queue pressure or fresh rejections
// grow the fleet; ScaleDownIdleTicks consecutive quiet ticks shrink it
// with a graceful drain — the victim is first removed from the ring,
// then waited on until its last in-flight request finishes, then shut
// down. Zero accepted requests are dropped by a scale-down.

package router

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cmppower/internal/obs"
)

// scaleLoop drives the autoscaler until Shutdown.
func (rt *Router) scaleLoop() {
	defer rt.loopWG.Done()
	t := time.NewTicker(rt.cfg.ScaleInterval)
	defer t.Stop()
	idleTicks := 0
	for {
		select {
		case <-rt.loopCtx.Done():
			return
		case <-t.C:
		}
		idleTicks = rt.scaleOnce(idleTicks)
		rt.publishFleetGauges()
	}
}

// scaleOnce runs one control tick and returns the updated idle streak.
func (rt *Router) scaleOnce(idleTicks int) int {
	type scrapeTarget struct {
		s   *shard
		url string
	}
	rt.fleetMu.Lock()
	var targets []scrapeTarget
	live := 0
	for _, s := range rt.slots {
		if s == nil || s.dead {
			continue
		}
		live++
		if s.down || s.draining {
			continue
		}
		targets = append(targets, scrapeTarget{s, s.url})
	}
	rt.fleetMu.Unlock()
	if len(targets) == 0 {
		return 0
	}

	var queueSum, rejectedDelta float64
	for _, tg := range targets {
		m, ok := rt.scrapeShard(tg.url)
		if !ok {
			continue
		}
		queueSum += m.queueDepth
		rt.fleetMu.Lock()
		// Counter deltas, not levels: a restarted shard resets to zero, in
		// which case the delta clamps to the new cumulative value.
		d := m.rejected - tg.s.lastRejected
		if d < 0 {
			d = m.rejected
		}
		tg.s.lastRejected = m.rejected
		rt.fleetMu.Unlock()
		rejectedDelta += d
	}
	meanQueue := queueSum / float64(len(targets))

	pressured := meanQueue >= rt.cfg.ScaleUpQueue || rejectedDelta > 0
	switch {
	case pressured && live < rt.cfg.ScaleMax:
		rt.scaleUp()
		return 0
	case pressured:
		return 0
	case queueSum == 0 && rejectedDelta == 0:
		idleTicks++
		if idleTicks >= rt.cfg.ScaleDownIdleTicks && live > rt.cfg.ScaleMin {
			rt.scaleDown()
			return 0
		}
		return idleTicks
	default:
		return 0
	}
}

// scaleUp boots a shard into the first free slot (a dead slot's index is
// reused so rendezvous placement for its keys is restored).
func (rt *Router) scaleUp() {
	rt.fleetMu.Lock()
	slot := -1
	for i, s := range rt.slots {
		if s == nil || s.dead {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(rt.slots)
	}
	rt.fleetMu.Unlock()
	if _, err := rt.spawnSlot(slot); err != nil {
		rt.reg.VolatileCounter("router_scale_failures_total").Add(1)
		return
	}
	rt.reg.VolatileCounter("router_scale_up_total").Add(1)
}

// scaleDown drains away the highest-slot active shard: out of the ring
// first, then wait for in-flight zero, then graceful backend shutdown.
func (rt *Router) scaleDown() {
	rt.fleetMu.Lock()
	var victim *shard
	for _, s := range rt.slots {
		if s == nil || s.dead || s.down || s.draining || !s.healthy {
			continue
		}
		if victim == nil || s.slot > victim.slot {
			victim = s
		}
	}
	if victim == nil {
		rt.fleetMu.Unlock()
		return
	}
	victim.draining = true // pick() skips it from this instant on
	proc := victim.proc
	rt.fleetMu.Unlock()

	ctx, cancel := context.WithTimeout(rt.loopCtx, rt.cfg.DrainTimeout)
	defer cancel()
	if err := victim.waitDrained(ctx); err != nil {
		// Never drop an accepted request: leave the shard draining and let
		// a later tick (or Shutdown) finish the job.
		rt.reg.VolatileCounter("router_scale_failures_total").Add(1)
		return
	}
	if err := proc.Shutdown(ctx); err != nil {
		rt.reg.VolatileCounter("router_scale_failures_total").Add(1)
	}
	rt.fleetMu.Lock()
	victim.draining = false
	victim.dead = true
	rt.fleetMu.Unlock()
	rt.reg.VolatileCounter("router_scale_down_total").Add(1)
}

// shardMetrics is what the scaler reads off one shard's /metrics.
type shardMetrics struct {
	queueDepth float64
	rejected   float64
}

// scrapeShard fetches and parses one shard's metrics exposition.
func (rt *Router) scrapeShard(url string) (shardMetrics, bool) {
	ctx, cancel := context.WithTimeout(rt.loopCtx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return shardMetrics{}, false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return shardMetrics{}, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return shardMetrics{}, false
	}
	text := string(body)
	m := shardMetrics{
		queueDepth: parseMetricValue(text, "server_queue_depth"),
		rejected:   parseMetricValue(text, "server_admission_rejected_total"),
	}
	return m, true
}

// parseMetricValue pulls one sample value out of a Prometheus text
// exposition (0 when absent). Label sets on the sample are ignored —
// shard-side metrics are unlabeled.
func parseMetricValue(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") {
			continue // a longer name with this prefix
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0
		}
		return v
	}
	return 0
}

// chaosLoop kills and respawns shards on the chaos schedule: a fleet
// that claims fault tolerance gets its faults injected for real. Only
// runs in spawn mode (New enforces it) — respawn needs Spawn.
func (rt *Router) chaosLoop() {
	defer rt.loopWG.Done()
	for {
		wait, down, ok := rt.cfg.Chaos.NextKill()
		if !ok {
			return
		}
		select {
		case <-rt.loopCtx.Done():
			return
		case <-time.After(wait):
		}

		// Pick a victim among routable shards, but never the last one: the
		// chaos contract is "the fleet masks a shard loss", which requires
		// a fleet to remain.
		now := time.Now()
		rt.fleetMu.Lock()
		var candidates []*shard
		for _, s := range rt.slots {
			if s != nil && s.routable(now, rt.cfg.BreakerCooldown) {
				candidates = append(candidates, s)
			}
		}
		if len(candidates) < 2 {
			rt.fleetMu.Unlock()
			continue
		}
		victim := candidates[rt.cfg.Chaos.KillTarget(len(candidates))]
		victim.down = true
		victim.healthy = false
		victim.consecOK = 0
		proc := victim.proc
		rt.fleetMu.Unlock()

		rt.reg.VolatileCounter(obs.WithShard("router_chaos_kills_total", victim.slot)).Add(1)
		proc.Kill()
		rt.publishFleetGauges()

		select {
		case <-rt.loopCtx.Done():
			return
		case <-time.After(down):
		}

		fresh, err := rt.cfg.Spawn(victim.slot)
		if err != nil {
			// Respawn failed (should not happen on loopback); the slot is
			// lost for this run.
			rt.reg.VolatileCounter("router_chaos_respawn_failures_total").Add(1)
			rt.fleetMu.Lock()
			victim.dead = true
			rt.fleetMu.Unlock()
			continue
		}
		rt.fleetMu.Lock()
		victim.proc = fresh
		victim.url = fresh.URL()
		victim.down = false
		victim.healthy = true
		victim.consecFail = 0
		victim.consecOK = 0
		victim.br.reset()
		victim.lastRejected = 0
		rt.fleetMu.Unlock()
		rt.reg.VolatileCounter(obs.WithShard("router_chaos_respawns_total", victim.slot)).Add(1)
		rt.publishFleetGauges()
	}
}
