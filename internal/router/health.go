// Active health checking: every HealthInterval the router probes each
// live shard's /readyz and runs the eject/readmit streak machine —
// EjectAfter consecutive failures take a shard out of the ring,
// ReadmitAfter consecutive successes put it back. Ejection is the slow
// (seconds-scale) membership signal; the per-shard circuit breaker
// reacts faster but on request traffic only, so a shard that stops
// receiving requests can still be ejected here and readmitted once its
// /readyz recovers.

package router

import (
	"context"
	"net/http"
	"time"

	"cmppower/internal/obs"
)

// healthLoop drives periodic probes until Shutdown cancels loopCtx.
func (rt *Router) healthLoop() {
	defer rt.loopWG.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.loopCtx.Done():
			return
		case <-t.C:
		}
		rt.checkHealthOnce()
		rt.publishFleetGauges()
	}
}

// checkHealthOnce probes every live shard (healthy or ejected — ejected
// shards need probes to earn readmission) and applies the streaks.
// Probes run outside the fleet mutex; only the streak bookkeeping takes
// it.
func (rt *Router) checkHealthOnce() {
	type probe struct {
		s   *shard
		url string
	}
	rt.fleetMu.Lock()
	var probes []probe
	for _, s := range rt.slots {
		if s == nil || s.dead || s.down || s.draining {
			continue
		}
		probes = append(probes, probe{s, s.url})
	}
	rt.fleetMu.Unlock()

	for _, p := range probes {
		ok := rt.probeReady(p.url)
		rt.fleetMu.Lock()
		// The shard may have been killed, drained, or respawned while the
		// probe was in flight; a stale verdict must not touch the streaks.
		if p.s.dead || p.s.down || p.s.draining || p.s.url != p.url {
			rt.fleetMu.Unlock()
			continue
		}
		if ok {
			p.s.consecOK++
			p.s.consecFail = 0
			if !p.s.healthy && p.s.consecOK >= rt.cfg.ReadmitAfter {
				p.s.healthy = true
				rt.fleetMu.Unlock()
				rt.reg.VolatileCounter(obs.WithShard("router_readmits_total", p.s.slot)).Add(1)
				continue
			}
		} else {
			p.s.consecFail++
			p.s.consecOK = 0
			if p.s.healthy && p.s.consecFail >= rt.cfg.EjectAfter {
				p.s.healthy = false
				rt.fleetMu.Unlock()
				rt.reg.VolatileCounter(obs.WithShard("router_ejects_total", p.s.slot)).Add(1)
				continue
			}
		}
		rt.fleetMu.Unlock()
	}
}

// probeReady is one /readyz round trip: ok means a 200 within the
// health timeout.
func (rt *Router) probeReady(url string) bool {
	ctx, cancel := context.WithTimeout(rt.loopCtx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
