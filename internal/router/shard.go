package router

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"cmppower/internal/obs"
	"cmppower/internal/server"
)

// Proc is one backend shard process as the router sees it: an address
// plus a lifecycle. In-process shards (SpawnInProcess) implement the full
// lifecycle; attached external `cmppower serve` processes are addresses
// the router does not own (Kill and Shutdown are no-ops there — their
// operator controls them).
type Proc interface {
	// URL is the shard's base URL, e.g. "http://127.0.0.1:43712".
	URL() string
	// Kill stops the shard abruptly: in-flight requests die mid-stream.
	// The chaos path.
	Kill()
	// Shutdown drains the shard gracefully within ctx.
	Shutdown(ctx context.Context) error
}

// SpawnFunc boots one backend shard for the given slot and returns it
// already serving. The autoscaler and the chaos respawn path call it.
type SpawnFunc func(slot int) (Proc, error)

// SpawnInProcess returns a SpawnFunc that boots a complete serving-layer
// shard in this process on a loopback listener. Each shard gets its own
// registry, rig pool, response cache, memo cache, and admission queue —
// share-nothing over real HTTP, exactly the topology of separate
// `cmppower serve` processes, minus the exec.
func SpawnInProcess(base server.Config) SpawnFunc {
	return func(slot int) (Proc, error) {
		cfg := base
		cfg.Registry = obs.NewRegistry() // never share a registry across shards
		srv := server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("router: spawn shard %d: %w", slot, err)
		}
		p := &inprocShard{srv: srv, url: "http://" + ln.Addr().String(), served: make(chan error, 1)}
		go func() { p.served <- srv.Serve(ln) }()
		return p, nil
	}
}

// inprocShard is a SpawnInProcess backend.
type inprocShard struct {
	srv    *server.Server
	url    string
	served chan error
}

func (p *inprocShard) URL() string { return p.url }

func (p *inprocShard) Kill() {
	p.srv.Close()
	<-p.served // the Serve goroutine has exited; the port is free
}

func (p *inprocShard) Shutdown(ctx context.Context) error {
	err := p.srv.Shutdown(ctx)
	select {
	case serveErr := <-p.served:
		if err == nil {
			err = serveErr
		}
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// attachedProc wraps an external backend URL the router routes to but
// does not own.
type attachedProc struct{ url string }

func (p attachedProc) URL() string                  { return p.url }
func (p attachedProc) Kill()                        {}
func (p attachedProc) Shutdown(context.Context) error { return nil }

// shard is one slot of the fleet: a backend plus the router's view of it.
// All fields except inflight are guarded by the owning Router's fleet
// mutex; inflight is atomic because the request path bumps it outside
// the lock.
type shard struct {
	slot int
	proc Proc
	url  string

	// Lifecycle. A dead shard was drained away by the autoscaler and its
	// slot may be respawned later; a down shard was chaos-killed and is
	// awaiting respawn.
	dead     bool
	down     bool
	draining bool

	// Health checker state: the eject/readmit streak machine.
	healthy    bool
	consecFail int
	consecOK   int

	br  breaker
	lat *latTracker

	// last*429 remember the previous scrape's cumulative counters so the
	// autoscaler works on deltas.
	lastRejected float64
	last429      float64

	inflight atomic.Int64
}

// routable reports whether the request path may send new work here.
// Caller holds the fleet mutex. now feeds the breaker's cooldown check.
func (s *shard) routable(now time.Time, cooldown time.Duration) bool {
	if s == nil || s.dead || s.down || s.draining || !s.healthy {
		return false
	}
	return s.br.eligible(now, cooldown)
}

// ShardInfo is the wire form of one slot on GET /fleet.
type ShardInfo struct {
	Slot     int    `json:"slot"`
	URL      string `json:"url"`
	State    string `json:"state"` // active, ejected, draining, down, dead
	Breaker  string `json:"breaker"`
	Inflight int64  `json:"inflight"`
}

// info snapshots one slot; caller holds the fleet mutex.
func (s *shard) info() ShardInfo {
	state := "active"
	switch {
	case s.dead:
		state = "dead"
	case s.down:
		state = "down"
	case s.draining:
		state = "draining"
	case !s.healthy:
		state = "ejected"
	}
	return ShardInfo{Slot: s.slot, URL: s.url, State: state,
		Breaker: s.br.state.String(), Inflight: s.inflight.Load()}
}

// waitDrained polls until the shard has no in-flight requests or ctx
// expires; used by scale-down so no accepted request is dropped.
func (s *shard) waitDrained(ctx context.Context) error {
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: slot %d still has %d in-flight after drain bound", s.slot, s.inflight.Load())
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}
