// Package router is cmppower's fleet front tier: it spawns (or attaches
// to) N serving-layer shards and routes every request by hashing the
// request's normalized identity — the same key the server's response
// cache, singleflight group, and experiment memo all key on — to a shard
// slot via rendezvous hashing. Identical requests therefore always land
// on the same shard, so each shard's LRU/memo caches stay naturally hot
// (memo-affinity routing), and because every shard computes bit-identical
// results, any shard can answer for any other when one is slow or dead.
//
// The paper's thesis, translated to serving (ROADMAP item 2): spread the
// load across more, modestly loaded shards instead of pushing one
// process to its worker-pool ceiling. The router makes that safe under
// faults (DESIGN.md §11):
//
//   - Health checking: active /readyz probes per shard with a
//     consecutive-failure eject / consecutive-success readmit machine.
//   - Circuit breaking: per-shard consecutive-failure trip, cooldown,
//     half-open single probe.
//   - Retry budget: extra attempts (retries and hedges) draw from one
//     global token bucket refilled by normal traffic, so the router can
//     never amplify an outage into a retry storm.
//   - Hedged requests: when a shard exceeds its own recent latency
//     quantile, the same request is fired at the next shard on the ring
//     and the first answer wins — byte-identical responses make this
//     safe, and server-side coalescing dedupes any stragglers.
//   - Autoscaling: a control loop scrapes each shard's queue-depth and
//     admission-rejection metrics and grows or drains the fleet, with a
//     zero-drop graceful drain on scale-down.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cmppower/internal/faults"
	"cmppower/internal/identity"
	"cmppower/internal/obs"
	"cmppower/internal/server"
	"cmppower/internal/traffic"
)

// Config parameterizes a Router. The zero value of every field takes the
// documented default. Exactly one of Backends (attach mode) or
// Shards+Spawn (spawn mode) selects the fleet; the autoscaler and chaos
// kills need spawn mode.
type Config struct {
	// Backends attaches the router to externally managed shard URLs.
	Backends []string
	// Shards is the initial spawned shard count (spawn mode).
	Shards int
	// Spawn boots one shard for a slot; required in spawn mode.
	Spawn SpawnFunc

	// HedgeQuantile is the per-shard latency quantile that arms the hedge
	// timer (default 0.95): if the primary has not answered within its
	// own q-quantile, the request is also fired at the next ring shard.
	HedgeQuantile float64
	// HedgeMin/HedgeMax clamp the hedge delay (defaults 20ms / 2s).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// LatencyPrior seeds a cold shard's quantile estimate (default 50ms).
	LatencyPrior time.Duration
	// MaxAttempts bounds total attempts per request, primary included
	// (default 3, capped at the fleet size at pick time).
	MaxAttempts int

	// RetryBudgetRatio is the fraction of normal traffic the fleet may
	// spend on extra attempts (default 0.1); RetryBudgetCap bounds the
	// bucket (default 16 tokens).
	RetryBudgetRatio float64
	RetryBudgetCap   float64

	// HealthInterval is the /readyz probe period (default 250ms);
	// HealthTimeout bounds one probe (default = HealthInterval).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EjectAfter consecutive probe failures eject a shard (default 3);
	// ReadmitAfter consecutive successes readmit it (default 2).
	EjectAfter   int
	ReadmitAfter int

	// BreakerFailures consecutive request failures trip a shard's
	// breaker (default 5); BreakerCooldown is the open → half-open delay
	// (default 2s).
	BreakerFailures int
	BreakerCooldown time.Duration

	// AutoScale enables the scaling control loop (spawn mode only).
	AutoScale bool
	// ScaleInterval is the control-loop period (default 2s).
	ScaleInterval time.Duration
	// ScaleMin/ScaleMax bound the live shard count (defaults 1 / 8).
	ScaleMin int
	ScaleMax int
	// ScaleUpQueue is the mean per-shard queue depth that triggers a
	// scale-up (default 1.0); any admission rejection in the window also
	// triggers one.
	ScaleUpQueue float64
	// ScaleDownIdleTicks is how many consecutive idle control ticks
	// (zero queue, zero rejections) precede a scale-down (default 3).
	ScaleDownIdleTicks int
	// DrainTimeout bounds a scale-down drain (default 30s).
	DrainTimeout time.Duration

	// Chaos injects fleet-level faults (shard kills, stalls, synthetic
	// backend errors); nil for none. Kills need spawn mode (respawn).
	Chaos *faults.Chaos

	// RequestTimeout bounds one client request across all attempts
	// (default 120s). MaxBodyBytes bounds request bodies (default 1MiB).
	RequestTimeout time.Duration
	MaxBodyBytes   int64

	// Registry collects router metrics; nil allocates a fresh one.
	Registry *obs.Registry
	// Client overrides the shard-facing HTTP client (tests).
	Client *http.Client
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.LatencyPrior <= 0 {
		c.LatencyPrior = 50 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudgetRatio <= 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetCap <= 0 {
		c.RetryBudgetCap = 16
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthInterval
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 2 * time.Second
	}
	if c.ScaleMin <= 0 {
		c.ScaleMin = 1
	}
	if c.ScaleMax <= 0 {
		c.ScaleMax = 8
	}
	if c.ScaleUpQueue <= 0 {
		c.ScaleUpQueue = 1.0
	}
	if c.ScaleDownIdleTicks <= 0 {
		c.ScaleDownIdleTicks = 3
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 256,
		}}
	}
	return c
}

// Router is the fleet front tier. Create with New, mount via Handler (or
// Serve/ListenAndServe), stop with Shutdown.
type Router struct {
	cfg    Config
	reg    *obs.Registry
	client *http.Client
	budget *retryBudget

	// fleetMu guards slot membership and all per-shard state except the
	// atomic inflight counters.
	fleetMu sync.Mutex
	slots   []*shard

	// Background loops (health, scaler, chaos) run on loopCtx and are
	// tracked by loopWG: Shutdown cancels and joins them before any
	// backend is shut down, so no loop ever races a dying shard.
	loopCtx    context.Context
	loopCancel context.CancelFunc
	loopWG     sync.WaitGroup

	mu       sync.Mutex
	httpSrv  *http.Server
	draining atomic.Bool
}

// errChaos marks a synthetic backend error injected by the chaos layer.
var errChaos = errors.New("router: chaos-injected backend error")

// New builds the fleet: spawns or attaches every initial shard and
// starts the health, autoscaler, and chaos loops. No client-facing
// socket is opened until Serve.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) > 0 && cfg.Shards > 0 {
		return nil, fmt.Errorf("router: Backends and Shards are mutually exclusive")
	}
	spawnMode := len(cfg.Backends) == 0
	if spawnMode {
		if cfg.Spawn == nil {
			return nil, fmt.Errorf("router: spawn mode needs a Spawn func")
		}
		if cfg.Shards <= 0 {
			cfg.Shards = 2
		}
		if cfg.Shards < cfg.ScaleMin {
			cfg.Shards = cfg.ScaleMin
		}
		if cfg.Shards > cfg.ScaleMax {
			cfg.Shards = cfg.ScaleMax
		}
	} else {
		if cfg.AutoScale {
			return nil, fmt.Errorf("router: autoscaling needs spawn mode (attached backends are not ours to scale)")
		}
		if cfg.Chaos.Config().KillPeriod > 0 {
			return nil, fmt.Errorf("router: chaos kills need spawn mode (no respawn for attached backends)")
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:        cfg,
		reg:        cfg.Registry,
		client:     cfg.Client,
		budget:     newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetCap),
		loopCtx:    ctx,
		loopCancel: cancel,
	}

	if spawnMode {
		for i := 0; i < cfg.Shards; i++ {
			if _, err := rt.spawnSlot(i); err != nil {
				cancel()
				rt.shutdownBackends(context.Background())
				return nil, err
			}
		}
	} else {
		for i, url := range cfg.Backends {
			rt.slots = append(rt.slots, rt.newShard(i, attachedProc{url: url}))
		}
	}
	rt.publishFleetGauges()

	rt.loopWG.Add(1)
	go rt.healthLoop()
	if cfg.AutoScale {
		rt.loopWG.Add(1)
		go rt.scaleLoop()
	}
	if cfg.Chaos.Config().KillPeriod > 0 {
		rt.loopWG.Add(1)
		go rt.chaosLoop()
	}
	return rt, nil
}

// newShard wires one slot's tracking state.
func (rt *Router) newShard(slot int, proc Proc) *shard {
	return &shard{
		slot:    slot,
		proc:    proc,
		url:     proc.URL(),
		healthy: true, // optimistic: serve immediately, eject on evidence
		br:      breaker{threshold: rt.cfg.BreakerFailures},
		lat:     newLatTracker(256, rt.cfg.LatencyPrior),
	}
}

// spawnSlot boots a shard into slot (reusing a dead slot's index or
// appending) and registers it. Caller must not hold fleetMu.
func (rt *Router) spawnSlot(slot int) (*shard, error) {
	proc, err := rt.cfg.Spawn(slot)
	if err != nil {
		return nil, err
	}
	s := rt.newShard(slot, proc)
	rt.fleetMu.Lock()
	for len(rt.slots) <= slot {
		rt.slots = append(rt.slots, nil)
	}
	rt.slots[slot] = s
	rt.fleetMu.Unlock()
	return s, nil
}

// Handler returns the router's routing handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", rt.proxy)
	mux.HandleFunc("POST /v1/sweep", rt.proxy)
	mux.HandleFunc("POST /v1/explore", rt.proxy)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /fleet", rt.handleFleet)
	return mux
}

// Serve accepts connections on ln until Shutdown.
func (rt *Router) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	rt.mu.Lock()
	rt.httpSrv = srv
	rt.mu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe is Serve on a fresh TCP listener.
func (rt *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(ln)
}

// Shutdown stops the fleet in strict order: (1) readiness flips and the
// client-facing HTTP layer drains — every accepted request completes,
// and with it every hedge timer and retry it owns; (2) the background
// loops (health, scaler, chaos) are context-cancelled and joined, so
// nothing respawns, probes, or rescales a shard from here on; (3) only
// then are the spawned backends drained. A shard is never shut down
// while a loop or an in-flight client request could still touch it.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	rt.mu.Lock()
	srv := rt.httpSrv
	rt.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	rt.loopCancel()
	rt.loopWG.Wait()
	if bErr := rt.shutdownBackends(ctx); err == nil {
		err = bErr
	}
	return err
}

// shutdownBackends gracefully drains every live spawned shard.
func (rt *Router) shutdownBackends(ctx context.Context) error {
	rt.fleetMu.Lock()
	var procs []Proc
	for _, s := range rt.slots {
		if s != nil && !s.dead && !s.down {
			procs = append(procs, s.proc)
			s.dead = true
		}
	}
	rt.fleetMu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, len(procs))
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p Proc) {
			defer wg.Done()
			errs[i] = p.Shutdown(ctx)
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Draining reports whether Shutdown has begun.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// target is one ranked routing choice, snapshotted under fleetMu so the
// request path never reads mutable shard fields without the lock.
type target struct {
	shard *shard
	url   string
}

// pick ranks the routable shards for a key by rendezvous score: highest
// score is the affinity owner, the rest are hedge/retry fallbacks in
// deterministic order. An empty result means no shard can take traffic.
func (rt *Router) pick(keyHash uint64) []target {
	now := time.Now()
	rt.fleetMu.Lock()
	defer rt.fleetMu.Unlock()
	type scored struct {
		t     target
		score uint64
	}
	var ranked []scored
	for _, s := range rt.slots {
		if s == nil || !s.routable(now, rt.cfg.BreakerCooldown) {
			continue
		}
		ranked = append(ranked, scored{target{s, s.url}, identity.Mix(keyHash, uint64(s.slot))})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	out := make([]target, len(ranked))
	for i, sc := range ranked {
		out[i] = sc.t
	}
	return out
}

// normalizeKey decodes and validates one request body the same way the
// backend will, and returns its canonical identity key. Validating here
// means a malformed request is a 400 at the front door, never a wasted
// backend attempt.
func normalizeKey(path string, body []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	switch path {
	case "/v1/run":
		var req server.RunRequest
		if err := dec.Decode(&req); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		req.ApplyDefaults()
		if err := req.Validate(); err != nil {
			return "", err
		}
		return identity.Key(path, &req), nil
	case "/v1/sweep":
		var req server.SweepRequest
		if err := dec.Decode(&req); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		req.ApplyDefaults()
		if err := req.Validate(); err != nil {
			return "", err
		}
		return identity.Key(path, &req), nil
	case "/v1/explore":
		var req server.ExploreRequest
		if err := dec.Decode(&req); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		req.ApplyDefaults()
		if err := req.Validate(); err != nil {
			return "", err
		}
		return identity.Key(path, &req), nil
	}
	return "", fmt.Errorf("router: no identity for %s", path)
}

// proxy is the client-facing request path: normalize → rank shards by
// the identity hash → dispatch with hedging and budgeted retries →
// relay the winning shard response verbatim.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	class := traffic.NormalizeClass(r.Header.Get(traffic.HeaderClass))
	client := r.Header.Get(traffic.HeaderClient)
	rt.reg.VolatileCounter("router_requests_total").Add(1)
	rt.reg.VolatileCounter(obs.WithClass("router_class_requests_total", class)).Add(1)
	// Touch the class's 429 counter so the family is visible on /metrics
	// at zero, before any rejection happens.
	rt.reg.VolatileCounter(obs.WithClass("router_class_429_total", class)).Add(0)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	w = sw
	start := time.Now()
	defer func() {
		elapsed := time.Since(start).Seconds()
		rt.reg.VolatileHistogram("router_request_seconds", requestSecondsBounds).
			Observe(elapsed)
		rt.reg.VolatileHistogram(obs.WithClass("router_class_request_seconds", class), requestSecondsBounds).
			Observe(elapsed)
		if sw.status == http.StatusTooManyRequests {
			rt.reg.VolatileCounter(obs.WithClass("router_class_429_total", class)).Add(1)
		}
	}()
	rt.budget.deposit()

	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	key, err := normalizeKey(r.URL.Path, body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}

	ranked := rt.pick(identity.Hash(key))
	if len(ranked) == 0 {
		rt.reg.VolatileCounter("router_unroutable_total").Add(1)
		w.Header().Set("Retry-After", "1")
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("no routable shard"))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	out := rt.dispatch(ctx, r.URL.Path, body, ranked, class, client)
	if out.err != nil {
		switch {
		case r.Context().Err() != nil:
			rt.writeError(w, server.StatusClientClosedRequest, r.Context().Err())
		case errors.Is(out.err, context.DeadlineExceeded):
			rt.writeError(w, http.StatusGatewayTimeout, out.err)
		default:
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf("all attempts failed: %w", out.err))
		}
		return
	}
	// Relay verbatim: the shard's bytes are the contract (doctor check 13
	// compares them against the direct library marshal).
	if ct := out.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := out.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// statusWriter records the response status so proxy can attribute
// outcomes (429s in particular) to the request's SLO class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// requestSecondsBounds bins router latency from cache-hit to long sweep.
var requestSecondsBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60}

// attemptOut is one backend attempt's outcome.
type attemptOut struct {
	target target
	hedged bool
	status int
	header http.Header
	body   []byte
	err    error
	dur    time.Duration
}

// usable reports whether this outcome can be relayed to the client. A
// 4xx (including 429 backpressure) is the fleet's honest answer and is
// relayed; transport failures and 5xx trigger the retry path.
func (a *attemptOut) usable() bool { return a.err == nil && a.status < 500 }

// dispatch runs the hedged, budgeted attempt ladder over the ranked
// shards and returns the first usable outcome, or the last failure.
// class and client are the traffic tags to forward to the backend so
// shard-level per-class metrics line up with the router's.
func (rt *Router) dispatch(ctx context.Context, path string, body []byte, ranked []target, class, client string) *attemptOut {
	maxAttempts := rt.cfg.MaxAttempts
	if maxAttempts > len(ranked) {
		maxAttempts = len(ranked)
	}
	attemptCtx, cancelAttempts := context.WithCancel(ctx)
	defer cancelAttempts() // losers are cancelled the moment a winner returns

	results := make(chan *attemptOut, maxAttempts)
	next := 0     // index of the next ranked target to try
	launched := 0 // attempts actually in flight or settled
	// launch starts an attempt at the next ranked shard whose breaker
	// admits one (half-open shards take exactly one probe at a time);
	// false means no further shard would accept.
	launch := func(hedged bool) bool {
		for next < len(ranked) && launched < maxAttempts {
			t := ranked[next]
			next++
			rt.fleetMu.Lock()
			admitted := t.shard.br.acquire()
			rt.fleetMu.Unlock()
			if !admitted {
				continue
			}
			rt.reg.VolatileCounter(obs.WithShard("router_routes_total", t.shard.slot)).Add(1)
			launched++
			go rt.attempt(attemptCtx, path, body, t, hedged, class, client, results)
			return true
		}
		return false
	}
	if !launch(false) {
		return &attemptOut{err: errors.New("router: no shard admitted the request")}
	}
	// settleLosers consumes outcomes still in flight after dispatch has
	// decided, off the request path: cancelled losers only release their
	// probe slot (no verdict), anything else still informs the breaker.
	settleLosers := func(pending int) {
		if pending == 0 {
			return
		}
		go func() {
			for i := 0; i < pending; i++ {
				rt.settleLoser(<-results)
			}
		}()
	}

	// The hedge timer arms on the primary's own recent tail: if it has
	// not answered within its q-quantile, someone else gets a copy.
	hedgeDelay := ranked[0].shard.lat.quantile(rt.cfg.HedgeQuantile)
	if hedgeDelay < rt.cfg.HedgeMin {
		hedgeDelay = rt.cfg.HedgeMin
	}
	if hedgeDelay > rt.cfg.HedgeMax {
		hedgeDelay = rt.cfg.HedgeMax
	}
	hedgeTimer := time.NewTimer(hedgeDelay)
	defer hedgeTimer.Stop()

	var lastFailure *attemptOut
	received := 0
	for {
		select {
		case out := <-results:
			received++
			rt.recordOutcome(out)
			if out.usable() {
				if out.hedged {
					rt.reg.VolatileCounter("router_hedge_wins_total").Add(1)
				}
				settleLosers(launched - received)
				return out
			}
			lastFailure = out
			if launched < maxAttempts {
				// Failure-triggered retry, if the budget allows.
				if rt.budget.withdraw() {
					if launch(false) {
						rt.reg.VolatileCounter("router_retries_total").Add(1)
						continue
					}
				} else {
					rt.reg.VolatileCounter("router_retry_budget_denied_total").Add(1)
				}
			}
			if received == launched {
				return lastFailure
			}
		case <-hedgeTimer.C:
			if launched < maxAttempts {
				if rt.budget.withdraw() {
					if launch(true) {
						rt.reg.VolatileCounter("router_hedges_total").Add(1)
					}
				} else {
					rt.reg.VolatileCounter("router_retry_budget_denied_total").Add(1)
				}
			}
		case <-ctx.Done():
			settleLosers(launched - received)
			return &attemptOut{err: ctx.Err()}
		}
	}
}

// attempt forwards the request to one shard, applying chaos injection,
// and reports the outcome. The result channel is buffered for every
// possible attempt, so a loser's send never blocks after dispatch
// returns.
func (rt *Router) attempt(ctx context.Context, path string, body []byte, t target, hedged bool, class, client string, results chan<- *attemptOut) {
	out := &attemptOut{target: t, hedged: hedged}
	start := time.Now()
	defer func() {
		out.dur = time.Since(start)
		results <- out
	}()
	t.shard.inflight.Add(1)
	defer t.shard.inflight.Add(-1)

	if rt.cfg.Chaos.BackendError(t.shard.slot) {
		rt.reg.VolatileCounter("router_chaos_errors_total").Add(1)
		out.err = errChaos
		return
	}
	if d := rt.cfg.Chaos.Stall(t.shard.slot); d > 0 {
		rt.reg.VolatileCounter("router_chaos_stalls_total").Add(1)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			out.err = ctx.Err()
			return
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.url+path, bytes.NewReader(body))
	if err != nil {
		out.err = err
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if class != "" {
		req.Header.Set(traffic.HeaderClass, class)
	}
	if client != "" {
		req.Header.Set(traffic.HeaderClient, client)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		out.err = err
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		out.err = err
		return
	}
	out.status = resp.StatusCode
	out.header = resp.Header
	out.body = b
}

// settleLoser settles an attempt whose outcome arrived after dispatch
// already decided. A cancellation caused by our own cancelAttempts says
// nothing about the shard, so it only releases any held probe slot; a
// real outcome (late success, genuine failure) still informs the breaker.
func (rt *Router) settleLoser(out *attemptOut) {
	if errors.Is(out.err, context.Canceled) {
		rt.fleetMu.Lock()
		out.target.shard.br.release()
		rt.fleetMu.Unlock()
		return
	}
	rt.recordOutcome(out)
}

// recordOutcome feeds one received attempt into the shard's breaker and
// latency tracker. Only received outcomes count: a loser cancelled
// because someone else won is never charged against its shard.
func (rt *Router) recordOutcome(out *attemptOut) {
	s := out.target.shard
	if s == nil {
		return
	}
	ok := out.err == nil && out.status < 500
	rt.fleetMu.Lock()
	tripped := s.br.record(ok, time.Now())
	rt.fleetMu.Unlock()
	if tripped {
		rt.reg.VolatileCounter(obs.WithShard("router_breaker_open_total", s.slot)).Add(1)
	}
	if out.err == nil && out.status >= 200 && out.status < 300 {
		s.lat.observe(out.dur)
	}
	if out.err != nil && !errors.Is(out.err, context.Canceled) {
		rt.reg.VolatileCounter("router_backend_errors_total").Add(1)
	}
}

// handleHealthz is liveness.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: ready only while not draining and at least
// one shard can take traffic.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if len(rt.pick(0)) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no routable shard")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the router registry as Prometheus exposition.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WriteText(w)
}

// FleetInfo is the wire form of GET /fleet.
type FleetInfo struct {
	Shards []ShardInfo `json:"shards"`
}

// handleFleet serves the live shard table (debugging, smoke assertions).
func (rt *Router) handleFleet(w http.ResponseWriter, _ *http.Request) {
	rt.fleetMu.Lock()
	info := FleetInfo{}
	for _, s := range rt.slots {
		if s != nil {
			info.Shards = append(info.Shards, s.info())
		}
	}
	rt.fleetMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&info)
}

// writeError renders the uniform JSON error body.
func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, mErr := json.Marshal(map[string]string{"error": err.Error()})
	if mErr != nil {
		body = []byte(`{"error":"internal"}`)
	}
	w.Write(body)
}

// publishFleetGauges refreshes the shard-count gauges.
func (rt *Router) publishFleetGauges() {
	now := time.Now()
	rt.fleetMu.Lock()
	live, routable := 0, 0
	for _, s := range rt.slots {
		if s == nil || s.dead {
			continue
		}
		live++
		if s.routable(now, rt.cfg.BreakerCooldown) {
			routable++
		}
	}
	rt.fleetMu.Unlock()
	rt.reg.VolatileGauge("router_shards").Set(float64(live))
	rt.reg.VolatileGauge("router_shards_routable").Set(float64(routable))
}
