// Per-shard circuit breakers, the global retry budget, and the per-shard
// latency quantile tracker — the three mechanisms that keep the router's
// own resilience features from amplifying an outage:
//
//   - The breaker stops sending to a shard that keeps failing (consecutive
//     -failure trip), then lets exactly one probe through after a cooldown
//     (half-open) before either closing again or re-opening.
//   - The retry budget caps extra attempts (retries + hedges) to a small
//     fraction of normal traffic, so a dead fleet sees a trickle of
//     probes, not a retry storm N× the offered load.
//   - The latency tracker estimates each shard's tail so hedging fires
//     only when this shard is slower than its own recent history.

package router

import (
	"sort"
	"sync"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String implements fmt.Stringer.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one shard's circuit breaker. Guarded by the owning Router's
// fleet mutex — the router mutates it at pick and record time, both of
// which already hold the lock.
type breaker struct {
	state       breakerState
	consecFails int
	threshold   int
	openedAt    time.Time
	probing     bool
}

// eligible reports whether this shard may appear in a routing ranking,
// transitioning open → half-open once the cooldown has passed (a
// time-based, idempotent move). It never consumes the half-open probe
// slot — being ranked is not being attempted; acquire does that at
// launch time.
func (b *breaker) eligible(now time.Time, cooldown time.Duration) bool {
	if b.state == breakerOpen {
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = false
	}
	if b.state == breakerHalfOpen {
		return !b.probing
	}
	return true
}

// acquire claims the right to send one attempt. Closed always admits;
// half-open admits exactly one probe at a time; open admits none.
func (b *breaker) acquire() bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// release returns an acquired probe slot without a verdict — the attempt
// was cancelled because another shard already answered, which says
// nothing about this shard's health.
func (b *breaker) release() {
	b.probing = false
}

// record folds one attempt outcome in; it returns true when this outcome
// tripped the breaker open (for the trip counter).
func (b *breaker) record(ok bool, now time.Time) (tripped bool) {
	if ok {
		b.state = breakerClosed
		b.consecFails = 0
		b.probing = false
		return false
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open, fresh cooldown.
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		return true
	default:
		b.consecFails++
		if b.state == breakerClosed && b.consecFails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// reset returns the breaker to closed (respawned shard, fresh history).
func (b *breaker) reset() {
	b.state = breakerClosed
	b.consecFails = 0
	b.probing = false
}

// retryBudget is the global token bucket bounding extra attempts. Every
// incoming request deposits ratio tokens (capped); every retry or hedge
// withdraws one whole token. With ratio 0.1 the fleet can spend at most
// one extra attempt per ten requests in steady state — an outage cannot
// be amplified past that, no matter how many clients retry.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

func newRetryBudget(ratio, capacity float64) *retryBudget {
	// Start full so a cold router can still hedge its first requests.
	return &retryBudget{tokens: capacity, cap: capacity, ratio: ratio}
}

// deposit credits one normal request's worth of budget.
func (rb *retryBudget) deposit() {
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.cap {
		rb.tokens = rb.cap
	}
	rb.mu.Unlock()
}

// withdraw takes one token for an extra attempt; false means the budget
// is exhausted and the attempt must not be made.
func (rb *retryBudget) withdraw() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// latTracker keeps a ring of one shard's recent request latencies and
// answers quantile queries over it. Small and exact: at 256 samples the
// per-request sort is microseconds, far below a single simulation.
type latTracker struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
	prior   time.Duration
}

func newLatTracker(size int, prior time.Duration) *latTracker {
	return &latTracker{samples: make([]time.Duration, size), prior: prior}
}

// observe folds one completed-request latency in.
func (t *latTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.next] = d
	t.next++
	if t.next == len(t.samples) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// quantile returns the q-quantile of the recent window, or the prior
// while the window is empty (a cold shard hedges on the prior).
func (t *latTracker) quantile(q float64) time.Duration {
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.samples)
	}
	if n == 0 {
		t.mu.Unlock()
		return t.prior
	}
	buf := make([]time.Duration, n)
	copy(buf, t.samples[:n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}
