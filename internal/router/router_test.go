package router

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cmppower/internal/faults"
	"cmppower/internal/identity"
	"cmppower/internal/server"
	"cmppower/internal/traffic"
)

// post fires one JSON POST and returns status, body (status 0 on
// transport failure; Errorf, not Fatal, so it is goroutine-safe).
func post(t *testing.T, url, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST %s: %v", path, err)
		return 0, nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return 0, nil
	}
	return resp.StatusCode, b
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fastFleet is a spawn-mode config tuned for tests: small worker pools,
// quick health ticks, and hedging effectively disabled unless a test
// opts in.
func fastFleet(shards int) Config {
	return Config{
		Shards:         shards,
		Spawn:          SpawnInProcess(server.Config{Workers: 2, QueueDepth: 8}),
		HealthInterval: 10 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
		HedgeMin:       5 * time.Second, // no accidental hedges in timing-agnostic tests
		HedgeMax:       5 * time.Second,
	}
}

func mustRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	return rt
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Now()
	cooldown := time.Second
	b := breaker{threshold: 3}

	// Closed admits; failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.eligible(now, cooldown) || !b.acquire() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		if b.record(false, now) {
			t.Fatalf("tripped before threshold at failure %d", i)
		}
	}
	// Third consecutive failure trips it open.
	if !b.record(false, now) {
		t.Fatal("threshold failure did not trip the breaker")
	}
	if b.state != breakerOpen {
		t.Fatalf("state %v, want open", b.state)
	}
	if b.eligible(now, cooldown) {
		t.Fatal("open breaker eligible before cooldown")
	}

	// After the cooldown: half-open, exactly one probe at a time, and
	// eligibility alone must not consume the probe slot.
	later := now.Add(2 * cooldown)
	if !b.eligible(later, cooldown) || !b.eligible(later, cooldown) {
		t.Fatal("half-open breaker not eligible after cooldown")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.state)
	}
	if !b.acquire() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.acquire() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// A released probe (cancelled attempt) frees the slot with no verdict.
	b.release()
	if !b.acquire() {
		t.Fatal("released probe slot not reusable")
	}
	// Probe failure: straight back to open with a fresh cooldown.
	if !b.record(false, later) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.eligible(later.Add(cooldown/2), cooldown) {
		t.Fatal("re-opened breaker eligible before its fresh cooldown")
	}
	// Probe success closes.
	evenLater := later.Add(2 * cooldown)
	if !b.eligible(evenLater, cooldown) || !b.acquire() {
		t.Fatal("breaker refused probe after second cooldown")
	}
	b.record(true, evenLater)
	if b.state != breakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.state)
	}
}

func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.5, 2)
	// Starts full: two withdrawals succeed, the third is denied.
	if !rb.withdraw() || !rb.withdraw() {
		t.Fatal("full budget denied a withdrawal")
	}
	if rb.withdraw() {
		t.Fatal("empty budget granted a withdrawal")
	}
	// Two deposits at ratio 0.5 buy exactly one more attempt.
	rb.deposit()
	rb.deposit()
	if !rb.withdraw() {
		t.Fatal("refilled budget denied a withdrawal")
	}
	if rb.withdraw() {
		t.Fatal("budget granted more than deposited")
	}
	// The bucket caps: unlimited deposits never exceed capacity.
	for i := 0; i < 100; i++ {
		rb.deposit()
	}
	granted := 0
	for rb.withdraw() {
		granted++
	}
	if granted != 2 {
		t.Fatalf("capacity-2 bucket granted %d withdrawals", granted)
	}
}

func TestLatTrackerQuantile(t *testing.T) {
	tr := newLatTracker(8, 42*time.Millisecond)
	if got := tr.quantile(0.95); got != 42*time.Millisecond {
		t.Fatalf("empty tracker quantile = %v, want the prior", got)
	}
	for i := 1; i <= 8; i++ {
		tr.observe(time.Duration(i) * time.Millisecond)
	}
	if got := tr.quantile(0.5); got != 4*time.Millisecond {
		t.Fatalf("median of 1..8ms = %v, want 4ms", got)
	}
	if got := tr.quantile(1.0); got != 8*time.Millisecond {
		t.Fatalf("max of 1..8ms = %v, want 8ms", got)
	}
	// The ring wraps: four more observations displace the oldest four.
	for i := 0; i < 4; i++ {
		tr.observe(100 * time.Millisecond)
	}
	if got := tr.quantile(1.0); got != 100*time.Millisecond {
		t.Fatalf("post-wrap max = %v, want 100ms", got)
	}
}

func TestConfigValidation(t *testing.T) {
	spawn := SpawnInProcess(server.Config{Workers: 1})
	chaosKill, err := faults.ParseChaosSpec("kill-period=5", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"backends and shards", Config{Backends: []string{"http://x"}, Shards: 2, Spawn: spawn}},
		{"spawn mode without Spawn", Config{Shards: 2}},
		{"autoscale in attach mode", Config{Backends: []string{"http://x"}, AutoScale: true}},
		{"chaos kills in attach mode", Config{Backends: []string{"http://x"}, Chaos: chaosKill}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
}

// TestByteIdenticalAcrossShardCounts is the tentpole contract: the fleet
// is invisible. For every shard count the router's bytes equal a direct
// single server's bytes, for every endpoint.
func TestByteIdenticalAcrossShardCounts(t *testing.T) {
	direct := httptest.NewServer(server.New(server.Config{Workers: 2}).Handler())
	defer direct.Close()

	reqs := []struct{ path, body string }{
		{"/v1/run", `{"app":"FFT","n":2,"scale":0.05,"seed":1}`},
		{"/v1/run", `{"app":"LU","n":4,"scale":0.05,"seed":3}`},
		{"/v1/sweep", `{"scenario":"I","apps":["Radix"],"core_counts":[1,2],"scale":0.05}`},
		{"/v1/explore", `{"apps":["Radix"],"scale":0.05}`},
	}
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		status, body := post(t, direct.URL, r.path, r.body)
		if status != http.StatusOK {
			t.Fatalf("direct %s: status %d body %s", r.path, status, body)
		}
		want[i] = body
	}

	for _, shards := range []int{1, 2, 4} {
		rt := mustRouter(t, fastFleet(shards))
		ts := httptest.NewServer(rt.Handler())
		for i, r := range reqs {
			status, body := post(t, ts.URL, r.path, r.body)
			if status != http.StatusOK {
				t.Fatalf("%d shards %s: status %d body %s", shards, r.path, status, body)
			}
			if !bytes.Equal(body, want[i]) {
				t.Errorf("%d shards %s: body differs from direct server\n got %s\nwant %s",
					shards, r.path, body, want[i])
			}
		}
		ts.Close()
	}
}

// TestMemoAffinity: identical requests always land on the same shard, so
// its caches stay hot and every other shard stays cold for that key.
func TestMemoAffinity(t *testing.T) {
	rt := mustRouter(t, fastFleet(4))
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	body := `{"app":"FFT","n":2,"scale":0.05,"seed":9}`
	for i := 0; i < 6; i++ {
		if status, b := post(t, ts.URL, "/v1/run", body); status != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, status, b)
		}
	}
	routed := 0
	for slot := 0; slot < 4; slot++ {
		name := fmt.Sprintf("router_routes_total{shard=%q}", fmt.Sprint(slot))
		if rt.reg.Counter(name).Value() > 0 {
			routed++
		}
	}
	if routed != 1 {
		t.Errorf("identical requests touched %d shards, want exactly 1 (memo affinity)", routed)
	}
}

// TestBadRequestStopsAtRouter: validation failures are a 400 at the
// front door and never reach a shard.
func TestBadRequestStopsAtRouter(t *testing.T) {
	rt := mustRouter(t, fastFleet(2))
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	for _, body := range []string{`{"app":"Nope","n":2}`, `{"app":`, `{"app":"FFT","n":2,"bogus":1}`} {
		if status, _ := post(t, ts.URL, "/v1/run", body); status != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, status)
		}
	}
	for slot := 0; slot < 2; slot++ {
		name := fmt.Sprintf("router_routes_total{shard=%q}", fmt.Sprint(slot))
		if n := rt.reg.Counter(name).Value(); n != 0 {
			t.Errorf("invalid requests were routed to shard %d (%d times)", slot, n)
		}
	}
}

// primarySlot computes which of n slots rendezvous hashing picks for a
// normalized run request — tests use it to aim chaos at the right shard.
func primarySlot(t *testing.T, body string, n int) int {
	t.Helper()
	key, err := normalizeKey("/v1/run", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	h := identity.Hash(key)
	best, bestScore := 0, uint64(0)
	for slot := 0; slot < n; slot++ {
		if s := identity.Mix(h, uint64(slot)); s > bestScore {
			best, bestScore = slot, s
		}
	}
	return best
}

// TestHedgeOnStalledShard: the primary shard for a key is stalled by
// chaos; the hedge fires after the latency quantile and the next ring
// shard answers identical bytes, far below the stall duration.
func TestHedgeOnStalledShard(t *testing.T) {
	body := `{"app":"FFT","n":2,"scale":0.05,"seed":5}`
	primary := primarySlot(t, body, 2)

	chaos, err := faults.ParseChaosSpec(
		fmt.Sprintf("stall=1,stall-ms=30000,stall-slot=%d", primary), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFleet(2)
	cfg.Chaos = chaos
	cfg.HedgeMin = 20 * time.Millisecond
	cfg.HedgeMax = 50 * time.Millisecond
	rt := mustRouter(t, cfg)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	start := time.Now()
	status, hedged := post(t, ts.URL, "/v1/run", body)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, hedged)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("hedged request took %v; the 30s stall leaked into the tail", elapsed)
	}
	if n := rt.reg.Counter("router_hedges_total").Value(); n < 1 {
		t.Errorf("router_hedges_total = %d, want >= 1", n)
	}
	if n := rt.reg.Counter("router_hedge_wins_total").Value(); n < 1 {
		t.Errorf("router_hedge_wins_total = %d, want >= 1", n)
	}

	// The hedge winner's bytes are the same bytes the direct library
	// path serves — hedging cannot change the answer.
	direct := httptest.NewServer(server.New(server.Config{Workers: 2}).Handler())
	defer direct.Close()
	if _, want := post(t, direct.URL, "/v1/run", body); !bytes.Equal(hedged, want) {
		t.Errorf("hedged body differs from direct server:\n got %s\nwant %s", hedged, want)
	}
}

// TestMasksKilledShard: a shard crashes without warning; requests keyed
// to it still succeed via transport-failure retries, and the health
// checker ejects it.
func TestMasksKilledShard(t *testing.T) {
	rt := mustRouter(t, fastFleet(2))
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	body := `{"app":"FFT","n":2,"scale":0.05,"seed":11}`
	victim := primarySlot(t, body, 2)

	// Warm the key on its home shard, then crash that shard abruptly.
	if status, _ := post(t, ts.URL, "/v1/run", body); status != http.StatusOK {
		t.Fatalf("warmup failed with %d", status)
	}
	rt.fleetMu.Lock()
	proc := rt.slots[victim].proc
	rt.fleetMu.Unlock()
	proc.Kill()

	// Every request keyed to the dead shard is masked by a retry.
	for i := 0; i < 5; i++ {
		if status, b := post(t, ts.URL, "/v1/run", body); status != http.StatusOK {
			t.Fatalf("request %d after kill: status %d body %s", i, status, b)
		}
	}
	if n := rt.reg.Counter("router_retries_total").Value(); n < 1 {
		t.Errorf("router_retries_total = %d, want >= 1", n)
	}

	// The health checker notices and ejects the corpse.
	waitFor(t, "victim ejection", func() bool {
		rt.fleetMu.Lock()
		defer rt.fleetMu.Unlock()
		return !rt.slots[victim].healthy
	})
	if n := rt.reg.Counter(fmt.Sprintf("router_ejects_total{shard=%q}", fmt.Sprint(victim))).Value(); n < 1 {
		t.Errorf("eject counter for shard %d = %d, want >= 1", victim, n)
	}
}

// TestAttachMode: the router can front externally managed backends.
func TestAttachMode(t *testing.T) {
	b0 := httptest.NewServer(server.New(server.Config{Workers: 2}).Handler())
	defer b0.Close()
	b1 := httptest.NewServer(server.New(server.Config{Workers: 2}).Handler())
	defer b1.Close()

	rt := mustRouter(t, Config{
		Backends:       []string{b0.URL, b1.URL},
		HealthInterval: 10 * time.Millisecond,
		HedgeMin:       5 * time.Second,
		HedgeMax:       5 * time.Second,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	status, _ := post(t, ts.URL, "/v1/run", `{"app":"FFT","n":2,"scale":0.05,"seed":1}`)
	if status != http.StatusOK {
		t.Fatalf("attach-mode request failed with %d", status)
	}
}

// TestPerClassMetricsForwarded: a request tagged with the traffic class
// header is counted per class at the router AND the tag is forwarded to
// the winning shard, so the shard's per-class families line up with the
// router's.
func TestPerClassMetricsForwarded(t *testing.T) {
	backend := server.New(server.Config{Workers: 2})
	b0 := httptest.NewServer(backend.Handler())
	defer b0.Close()

	rt := mustRouter(t, Config{
		Backends:       []string{b0.URL},
		HealthInterval: 10 * time.Millisecond,
		HedgeMin:       5 * time.Second,
		HedgeMax:       5 * time.Second,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(`{"app":"FFT","n":2,"scale":0.05,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traffic.HeaderClass, "batch")
	req.Header.Set(traffic.HeaderClient, "nightly")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tagged request failed with %d", resp.StatusCode)
	}

	fetch := func(url string) string {
		r, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return string(b)
	}
	routerText := fetch(ts.URL)
	for _, want := range []string{
		`router_class_requests_total{class="batch"} 1`,
		`router_class_429_total{class="batch"} 0`,
		`router_class_request_seconds_count{class="batch"} 1`,
	} {
		if !strings.Contains(routerText, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
	shardText := fetch(b0.URL)
	if !strings.Contains(shardText, `server_class_requests_total{class="batch"} 1`) {
		t.Errorf("shard /metrics missing the forwarded class count:\n%s", shardText)
	}
}

// TestUnroutableFleet: with every backend unreachable the router fails
// fast (502 on attempts, then 503 + not-ready once health ejects).
func TestUnroutableFleet(t *testing.T) {
	// A listener that is closed immediately: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	rt := mustRouter(t, Config{
		Backends:       []string{deadURL},
		HealthInterval: 10 * time.Millisecond,
		EjectAfter:     1,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	waitFor(t, "dead backend ejection", func() bool {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	status, _ := post(t, ts.URL, "/v1/run", `{"app":"FFT","n":2}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("unroutable fleet answered %d, want 503", status)
	}
	if n := rt.reg.Counter("router_unroutable_total").Value(); n < 1 {
		t.Errorf("router_unroutable_total = %d, want >= 1", n)
	}
}

// fakeProc backs the autoscaler test with a shard whose /metrics the
// test scripts directly.
type fakeProc struct {
	ts *httptest.Server
}

func (p *fakeProc) URL() string { return p.ts.URL }
func (p *fakeProc) Kill()       { p.ts.Close() }
func (p *fakeProc) Shutdown(context.Context) error {
	p.ts.Close()
	return nil
}

// TestAutoscalerGrowsAndShrinks drives the control loop with scripted
// queue-depth readings: pressure grows the fleet to ScaleMax, sustained
// idleness drains it back to ScaleMin.
func TestAutoscalerGrowsAndShrinks(t *testing.T) {
	var queueDepth atomic.Int64
	spawn := func(slot int) (Proc, error) {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ready")
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "server_queue_depth %d\nserver_admission_rejected_total 0\n", queueDepth.Load())
		})
		return &fakeProc{ts: httptest.NewServer(mux)}, nil
	}

	rt := mustRouter(t, Config{
		Shards:             1,
		Spawn:              spawn,
		AutoScale:          true,
		ScaleInterval:      15 * time.Millisecond,
		ScaleMin:           1,
		ScaleMax:           3,
		ScaleUpQueue:       1,
		ScaleDownIdleTicks: 2,
		HealthInterval:     10 * time.Millisecond,
	})
	liveCount := func() int {
		rt.fleetMu.Lock()
		defer rt.fleetMu.Unlock()
		n := 0
		for _, s := range rt.slots {
			if s != nil && !s.dead {
				n++
			}
		}
		return n
	}

	queueDepth.Store(5)
	waitFor(t, "scale-up to ScaleMax", func() bool { return liveCount() == 3 })
	if n := rt.reg.Counter("router_scale_up_total").Value(); n < 2 {
		t.Errorf("router_scale_up_total = %d, want >= 2", n)
	}

	queueDepth.Store(0)
	waitFor(t, "scale-down to ScaleMin", func() bool { return liveCount() == 1 })
	if n := rt.reg.Counter("router_scale_down_total").Value(); n < 2 {
		t.Errorf("router_scale_down_total = %d, want >= 2", n)
	}
}

// TestShutdownOrderingUnderLoad is the bugfix-sweep regression: Shutdown
// must drain the client-facing HTTP layer first, then stop the health /
// scaler / chaos loops, and only then shut the backends down — so every
// accepted request completes against live shards and no loop races a
// dying backend. Run under -race (make check does) this doubles as the
// ordering data-race check.
func TestShutdownOrderingUnderLoad(t *testing.T) {
	chaos, err := faults.ParseChaosSpec("kill-period=0.08,kill-down=0.05,seed=3", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFleet(2)
	cfg.Chaos = chaos
	cfg.AutoScale = true
	cfg.ScaleInterval = 20 * time.Millisecond
	cfg.ScaleMin = 1
	cfg.ScaleMax = 3
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// Distinct bodies so nothing coalesces: every request really runs.
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"app":"FFT","n":2,"scale":0.05,"seed":%d}`, 100+i)
			status, b := post(t, url, "/v1/run", body)
			if status != http.StatusOK {
				t.Errorf("in-flight request %d dropped during shutdown: status %d body %s", i, status, b)
			}
			completed.Add(1)
		}(i)
	}

	// Let the requests get accepted, then shut down underneath them.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	wg.Wait()
	if n := completed.Load(); n != 6 {
		t.Errorf("%d of 6 accepted requests completed", n)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v", err)
	}
	// After Shutdown every loop has been joined: a second Shutdown is a
	// quiet no-op, not a double-close.
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Errorf("repeated Shutdown: %v", err)
	}
}

// TestFleetEndpoint: /fleet reports one entry per slot with live state.
func TestFleetEndpoint(t *testing.T) {
	rt := mustRouter(t, fastFleet(2))
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{`"slot":0`, `"slot":1`, `"state":"active"`, `"breaker":"closed"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/fleet missing %s in %s", want, b)
		}
	}
}
