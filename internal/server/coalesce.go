// Request coalescing (singleflight) and the size-bounded LRU response
// cache. Identical concurrent requests share one simulation: the first
// arrival becomes the leader and computes on a context that belongs to
// the *flight*, not to any single HTTP request, so one impatient client
// cannot kill the result for everyone else — the flight is cancelled
// only when every interested request has gone away. Completed 200
// responses land in the LRU, layered over the experiment memo cache:
// the memo dedupes the underlying simulations, the response cache
// dedupes the serialized bytes.

package server

import (
	"container/list"
	"context"
	"sync"
)

// response is a fully materialized HTTP payload, shareable byte-for-byte
// between coalesced waiters and cache hits.
type response struct {
	status int
	body   []byte
}

// flight is one in-progress computation, shared by every request that
// asked for the same key while it ran.
type flight struct {
	done   chan struct{}
	resp   *response
	err    error
	ctx    context.Context
	cancel context.CancelFunc
	refs   int // interested requests; 0 → cancel the computation
}

// flightGroup implements singleflight with reference-counted flight
// contexts.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating it (leader=true) if none is
// running. The caller must pair every join with a leave.
func (g *flightGroup) join(base context.Context, key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		f.refs++
		return f, false
	}
	ctx, cancel := context.WithCancel(base)
	f = &flight{done: make(chan struct{}), ctx: ctx, cancel: cancel, refs: 1}
	g.m[key] = f
	return f, true
}

// leave drops one request's interest in the flight. When the last
// interested request leaves before completion, the flight's context is
// cancelled so the simulation stops burning a worker slot for nobody.
func (g *flightGroup) leave(key string, f *flight) {
	g.mu.Lock()
	f.refs--
	abandoned := f.refs == 0 && !f.finished()
	g.mu.Unlock()
	if abandoned {
		f.cancel()
	}
}

// finish records the outcome and wakes every waiter. The flight is
// removed from the group first so a request arriving after completion
// starts fresh (the response cache, not the flight table, serves
// repeats).
func (g *flightGroup) finish(key string, f *flight, resp *response, err error) {
	g.mu.Lock()
	delete(g.m, key)
	f.resp, f.err = resp, err
	g.mu.Unlock()
	close(f.done)
	f.cancel()
}

// finished reports whether finish ran; callers hold g.mu.
func (f *flight) finished() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// refsOf reports the current waiter count for key (0 when no flight is
// running); used by tests to deterministically sequence coalescing.
func (g *flightGroup) refsOf(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.refs
	}
	return 0
}

// lruCache is a size-bounded response cache. Entries are whole
// serialized responses; only status-200 bodies are stored.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *response
}

// newLRUCache returns a cache bounded at capacity entries; capacity <= 0
// disables caching entirely (every method is a cheap no-op).
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return &lruCache{}
	}
	return &lruCache{capacity: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached response for key, refreshing its recency.
func (c *lruCache) get(key string) (*response, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).resp, true
}

// put stores a response, evicting least-recently-used entries past the
// bound; it returns how many entries were evicted.
func (c *lruCache) put(key string, resp *response) (evicted int) {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*lruEntry).resp = resp
		c.ll.MoveToFront(e)
		return 0
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, resp: resp})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

// len reports the live entry count.
func (c *lruCache) len() int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
