package server

import (
	"testing"
	"time"
)

// TestRetryAfterJitter: the Retry-After estimate carries ±20% jitter so
// one overload burst's rejected clients do not re-synchronize into a
// retry herd — distinct rejections must spread across the band, and the
// clamps still hold.
func TestRetryAfterJitter(t *testing.T) {
	a := newAdmission(2, 4)
	a.avgRunNs.Store(int64(10 * time.Second))
	a.queued.Store(4)

	// Base estimate: ceil(5/2) * 10s = 30s; jittered into [24s, 36s].
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		got := a.retryAfter()
		if got < 24*time.Second || got > 36*time.Second {
			t.Fatalf("retryAfter %v outside the ±20%% band [24s, 36s]", got)
		}
		seen[got] = true
	}
	if len(seen) < 4 {
		t.Errorf("64 rejections produced only %d distinct Retry-After values; jitter missing", len(seen))
	}

	// Clamps apply after jitter: a tiny estimate still floors at 1s and a
	// huge one still caps at 120s.
	a.avgRunNs.Store(int64(time.Millisecond))
	if got := a.retryAfter(); got != time.Second {
		t.Errorf("floor clamp: %v, want 1s", got)
	}
	a.avgRunNs.Store(int64(10 * time.Minute))
	if got := a.retryAfter(); got != 2*time.Minute {
		t.Errorf("cap clamp: %v, want 2m", got)
	}
}
