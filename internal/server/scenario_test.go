package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cmppower/internal/experiment"
	"cmppower/internal/scenario"
	"cmppower/internal/splash"
)

// A run request carrying a chip scenario must simulate that chip and
// echo its content digest; a baseline-equivalent chip body must produce
// the exact measurement of the implicit-chip request (shared rig and
// caches), while still echoing its own digest.
func TestRunEndpointChipScenario(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Implicit baseline.
	status, plain := post(t, ts.Client(), ts.URL+"/v1/run", `{"app":"FFT","n":2,"scale":0.05,"seed":1}`)
	if status != http.StatusOK {
		t.Fatalf("baseline status %d: %s", status, plain)
	}
	var plainResp RunResponse
	if err := json.Unmarshal(plain, &plainResp); err != nil {
		t.Fatal(err)
	}
	if plainResp.ChipDigest != "" {
		t.Errorf("implicit-chip response carries chip_digest %q", plainResp.ChipDigest)
	}

	// Explicit baseline-equivalent chip: same measurement, digest echoed.
	status, base := post(t, ts.Client(), ts.URL+"/v1/run",
		`{"app":"FFT","n":2,"scale":0.05,"seed":1,"chip":{"name":"my-baseline"}}`)
	if status != http.StatusOK {
		t.Fatalf("baseline-chip status %d: %s", status, base)
	}
	var baseResp RunResponse
	if err := json.Unmarshal(base, &baseResp); err != nil {
		t.Fatal(err)
	}
	sc := &scenario.Scenario{Name: "my-baseline"}
	sc.Normalize()
	wantDigest, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if baseResp.ChipDigest != wantDigest {
		t.Errorf("chip_digest = %q, want %q", baseResp.ChipDigest, wantDigest)
	}
	if *baseResp.Measurement != *plainResp.Measurement {
		t.Errorf("baseline chip body diverged from implicit baseline:\n got %+v\nwant %+v",
			baseResp.Measurement, plainResp.Measurement)
	}

	// A genuinely different chip: runs, echoes a different digest, and
	// measures differently (90 nm silicon clocks lower).
	status, other := post(t, ts.Client(), ts.URL+"/v1/run",
		`{"app":"FFT","n":2,"scale":0.05,"seed":1,"chip":{"name":"old-node","node":"90nm"}}`)
	if status != http.StatusOK {
		t.Fatalf("90nm-chip status %d: %s", status, other)
	}
	var otherResp RunResponse
	if err := json.Unmarshal(other, &otherResp); err != nil {
		t.Fatal(err)
	}
	if otherResp.ChipDigest == "" || otherResp.ChipDigest == baseResp.ChipDigest {
		t.Errorf("90nm chip_digest %q not distinct from baseline %q", otherResp.ChipDigest, baseResp.ChipDigest)
	}
	if otherResp.Measurement.Seconds == plainResp.Measurement.Seconds {
		t.Errorf("90nm chip measured identically to 65nm baseline: %+v", otherResp.Measurement)
	}

	// The library agrees with the scenario-chip response exactly.
	sc90, err := scenario.Load(strings.NewReader(`{"name":"old-node","node":"90nm"}`))
	if err != nil {
		t.Fatal(err)
	}
	rig, err := experiment.NewRigFromScenario(sc90, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := splash.ByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rig.RunApp(ap, 2, rig.Table.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if *otherResp.Measurement != *m {
		t.Errorf("served 90nm measurement differs from library:\n got %+v\nwant %+v", otherResp.Measurement, m)
	}
}

// Malformed chip scenarios must be rejected client-side with 400: an
// out-of-range field, a typoed knob (strict decoding), and a core count
// the chip cannot host.
func TestRunEndpointChipRejections(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"invalid chip", `{"app":"FFT","n":2,"chip":{"name":"bad","chip":{"total_cores":999}}}`},
		{"unknown field", `{"app":"FFT","n":2,"chip":{"name":"typo","chip":{"totel_cores":8}}}`},
		{"n beyond chip", `{"app":"FFT","n":16,"chip":{"name":"small","chip":{"total_cores":8}}}`},
	}
	for _, tc := range cases {
		status, body := post(t, ts.Client(), ts.URL+"/v1/run", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, status, body)
		}
	}

	// A chip with more cores than the baseline raises the bound instead:
	// n=32 validates against a 32-core chip (the sweep below proves the
	// request then runs end to end).
	status, body := post(t, ts.Client(), ts.URL+"/v1/run",
		`{"app":"FFT","n":32,"scale":0.02,"chip":{"name":"wide","chip":{"total_cores":32}}}`)
	if status != http.StatusOK {
		t.Fatalf("32-core chip run status %d: %s", status, body)
	}
	var resp RunResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Measurement.N != 32 || resp.Measurement.PowerW <= 0 {
		t.Errorf("degenerate 32-core measurement: %+v", resp.Measurement)
	}
}

// A sweep request with a chip scenario echoes the digest and sweeps the
// scenario's chip.
func TestSweepEndpointChipScenario(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"scenario":"I","apps":["FFT"],"core_counts":[1,2],"scale":0.05,` +
		`"chip":{"name":"old-node","node":"90nm"}}`
	status, b := post(t, ts.Client(), ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sweep status %d: %s", status, b)
	}
	var resp SweepResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Load(strings.NewReader(`{"name":"old-node","node":"90nm"}`))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ChipDigest != want {
		t.Errorf("sweep chip_digest = %q, want %q", resp.ChipDigest, want)
	}
	if len(resp.Outcomes) != 1 || resp.Outcomes[0].Error != "" || resp.Outcomes[0].I == nil {
		t.Fatalf("unexpected sweep outcomes: %s", b)
	}
}
