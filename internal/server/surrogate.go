package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cmppower/internal/experiment"
	"cmppower/internal/explore"
	"cmppower/internal/surrogate"
)

// Surrogate-path wire surface (DESIGN.md §14).
const (
	// ModeSurrogate marks a request that allows an approximate answer.
	ModeSurrogate = "surrogate"
	// HeaderApprox is the header form of Mode "surrogate": any value but
	// "0"/"false" opts the request in (folded into the body Mode before
	// normalization, so it shares the cache identity).
	HeaderApprox = "X-Cmppower-Approx"
	// HeaderSource echoes where the answer came from ("surrogate" or
	// "simulation") on surrogate-mode run responses.
	HeaderSource = "X-Cmppower-Source"
	// HeaderBound echoes the advertised maximum relative error on
	// surrogate-served run responses.
	HeaderBound = "X-Cmppower-Bound"
)

// normalizeMode canonicalizes a request Mode: "exact" and "" spell the
// same thing, so exact-mode requests keep the pre-surrogate cache
// identity (and stay byte-identical to the library).
func normalizeMode(mode string) string {
	m := strings.ToLower(strings.TrimSpace(mode))
	if m == "exact" {
		m = ""
	}
	return m
}

// validateMode accepts the two serving modes.
func validateMode(mode string) error {
	if mode != "" && mode != ModeSurrogate {
		return fmt.Errorf("mode %q (want \"exact\" or \"surrogate\")", mode)
	}
	return nil
}

// approxRequested reads the X-Cmppower-Approx opt-in header.
func approxRequested(r *http.Request) bool {
	v := strings.TrimSpace(r.Header.Get(HeaderApprox))
	return v != "" && v != "0" && !strings.EqualFold(v, "false")
}

// SurrogateRunResponse is the body of a surrogate-mode POST /v1/run.
// Exactly one of Prediction/Measurement is set, declared by Source; a
// surrogate answer advertises the fit's error bound (relative, on
// seconds and watts; energy and EDP compound it).
type SurrogateRunResponse struct {
	Source      string                  `json:"source"`
	Bound       float64                 `json:"bound,omitempty"`
	Prediction  *surrogate.Prediction   `json:"prediction,omitempty"`
	Measurement *experiment.Measurement `json:"measurement,omitempty"`
}

// SurrogateExploreResponse is the body of a surrogate-mode POST
// /v1/explore: the full cell grid with per-cell provenance, plus the
// prune accounting.
type SurrogateExploreResponse struct {
	Outcomes []explore.SourcedOutcome `json:"outcomes"`
	// BestEDP as in ExploreResponse; winning cells are always simulated
	// (the pruner's contract).
	BestEDP   map[string]string `json:"best_edp"`
	Simulated int               `json:"simulated"`
	Pruned    int               `json:"pruned"`
}

// NewSurrogateExploreResponse assembles the wire form of a pruned
// exploration.
func NewSurrogateExploreResponse(cells []explore.SourcedOutcome) *SurrogateExploreResponse {
	resp := &SurrogateExploreResponse{Outcomes: cells, BestEDP: make(map[string]string)}
	for app, o := range explore.BestByEDP(explore.Outcomes(cells)) {
		resp.BestEDP[app] = o.Option.Name
	}
	for _, c := range cells {
		if c.Source == "surrogate" {
			resp.Pruned++
		} else {
			resp.Simulated++
		}
	}
	return resp
}

// handleRunSurrogate serves a surrogate-mode run. The hit path answers
// straight from the active fit — no admission slot, no singleflight, no
// response cache; the whole point is that it costs microseconds. Misses
// fall back to the standard coalesced simulation path, whose result both
// answers this request (source "simulation": exact, trivially within any
// bound) and trains the next refit through the rig's store feed.
func (s *Server) handleRunSurrogate(w http.ResponseWriter, r *http.Request, req *RunRequest) {
	if s.surr != nil && req.Faults == "" && !req.DTM {
		if rig, err := s.rigs.get(req.Scale, req.Chip); err == nil {
			point := rig.Table.Nominal()
			if req.FreqMHz > 0 {
				point = rig.Table.PointFor(req.FreqMHz * 1e6)
			}
			if pred, fit, ok := s.surr.Predict(rig.SurrogateKey(req.App), req.N, point.Freq, point.Volt); ok {
				s.reg.VolatileCounter("surrogate_hits_total").Add(1)
				resp, err := okJSON(&SurrogateRunResponse{
					Source: "surrogate", Bound: fit.Bound, Prediction: &pred,
				})
				if err != nil {
					s.writeError(w, http.StatusInternalServerError, err)
					return
				}
				w.Header().Set(HeaderSource, "surrogate")
				w.Header().Set(HeaderBound, strconv.FormatFloat(fit.Bound, 'g', -1, 64))
				s.writeResponse(w, resp)
				return
			}
		}
	}
	s.reg.VolatileCounter("surrogate_misses_total").Add(1)
	w.Header().Set(HeaderSource, "simulation")
	s.serveCoalesced(w, r, cacheKey("/v1/run", req), func(ctx context.Context) (*response, error) {
		m, err := s.computeRun(ctx, req)
		if err != nil {
			return nil, err
		}
		return okJSON(&SurrogateRunResponse{Source: "simulation", Measurement: m})
	})
}

// handleExploreSurrogate serves a surrogate-mode exploration through the
// standard coalesced path — pruned or not, an exploration simulates most
// of its grid. The cache key folds in the store generation so a response
// derived from a superseded fit is never served after a refit.
func (s *Server) handleExploreSurrogate(w http.ResponseWriter, r *http.Request, req *ExploreRequest) {
	var gen int64
	if s.surr != nil {
		gen = s.surr.Generation()
	}
	key := fmt.Sprintf("%s#surrogate-gen=%d", cacheKey("/v1/explore", req), gen)
	s.serveCoalesced(w, r, key, func(ctx context.Context) (*response, error) {
		apps, err := resolveApps(req.Apps)
		if err != nil {
			return nil, err
		}
		rig, err := s.rigs.get(req.Scale, req.Chip)
		if err != nil {
			return nil, err
		}
		cells, err := explore.ExploreSurrogateScenario(ctx, apps, explore.StandardOptions(), req.Chip,
			req.Scale, 1, s.reg, s.surr, rig.SurrogateKey)
		if err != nil {
			return nil, err
		}
		return okJSON(NewSurrogateExploreResponse(cells))
	})
}
