package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cmppower/internal/experiment"
	"cmppower/internal/splash"
	"cmppower/internal/traffic"
)

// post fires one JSON POST and returns status, body. Failures are
// reported with Errorf (not Fatal) so the helper is safe from client
// goroutines; callers see status 0.
func post(t *testing.T, client *http.Client, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST %s: %v", url, err)
		return 0, nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return 0, nil
	}
	return resp.StatusCode, b
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunEndpointMatchesLibrary proves the serving layer is a transparent
// wrapper: the HTTP body is byte-identical to marshaling the direct
// library result, both on the computed response and on the cache hit.
func TestRunEndpointMatchesLibrary(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"app":"FFT","n":2,"scale":0.05,"seed":1}`
	status, got := post(t, ts.Client(), ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, got)
	}

	rig, err := experiment.NewRig(0.05)
	if err != nil {
		t.Fatal(err)
	}
	app, err := splash.ByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rig.RunAppSeeded(context.Background(), app, 2, rig.Table.Nominal(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(&RunResponse{Measurement: m})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("served body differs from direct library marshal:\n got %s\nwant %s", got, want)
	}

	// Second identical request: served from the response cache,
	// byte-identical again.
	status, cached := post(t, ts.Client(), ts.URL+"/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("cached status %d", status)
	}
	if !bytes.Equal(cached, want) {
		t.Errorf("cached body differs from computed body")
	}
	if hits := s.reg.Counter("server_cache_hits_total").Value(); hits < 1 {
		t.Errorf("server_cache_hits_total = %d, want >= 1", hits)
	}
}

// TestPerClassMetrics: requests tagged with the traffic class header
// land in per-class counter and histogram families on /metrics, with
// untagged requests under the catch-all class, and every seen class's
// 429 counter visible at zero before any rejection.
func TestPerClassMetrics(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One tagged request, one untagged.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(`{"app":"FFT","n":1,"scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traffic.HeaderClass, "interactive")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	post(t, ts.Client(), ts.URL+"/v1/run", `{"app":"LU","n":1,"scale":0.05}`)

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(b)
	for _, want := range []string{
		`server_class_requests_total{class="interactive"} 1`,
		`server_class_requests_total{class="other"} 1`,
		`server_class_429_total{class="interactive"} 0`,
		`server_class_request_seconds_count{class="interactive"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBadRequests exercises the validation layer: every malformed request
// is a 400 before it costs a worker slot.
func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
	}{
		{"unknown app", "/v1/run", `{"app":"NoSuchApp","n":2}`},
		{"n out of range", "/v1/run", `{"app":"FFT","n":0}`},
		{"scale out of range", "/v1/run", `{"app":"FFT","n":2,"scale":9}`},
		{"unknown field", "/v1/run", `{"app":"FFT","n":2,"bogus":1}`},
		{"invalid json", "/v1/run", `{"app":`},
		{"bad fault spec", "/v1/sweep", `{"scenario":"I","apps":["FFT"],"faults":"nonsense"}`},
		{"bad scenario", "/v1/sweep", `{"scenario":"III"}`},
		{"bad retries", "/v1/sweep", `{"scenario":"I","retries":99}`},
		{"explore bad app", "/v1/explore", `{"apps":["Nope"]}`},
	}
	for _, tc := range cases {
		status, body := post(t, ts.Client(), ts.URL+tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, status, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not the uniform shape", tc.name, body)
		}
	}

	// Wrong method is routing-level.
	resp, err := ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run status %d, want 405", resp.StatusCode)
	}
}

// TestHealthAndMetrics covers the probe endpoints and the live metrics
// exposition.
func TestHealthAndMetrics(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}

	// One real request so the request counters exist.
	post(t, ts.Client(), ts.URL+"/v1/run", `{"app":"FFT","n":1,"scale":0.05}`)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{"server_requests_total", "server_computations_total", "memo_misses_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Draining flips readiness to 503.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz status %d, want 503", resp.StatusCode)
	}
}

// TestCoalescing proves singleflight: N identical concurrent requests
// trigger exactly one simulation and all receive byte-identical bodies.
// The response cache is disabled so coalescing alone carries the load.
func TestCoalescing(t *testing.T) {
	const clients = 8
	s := New(Config{Workers: 4, CacheEntries: -1})
	s.testLeaderGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RunRequest{App: "FFT", N: 2, Scale: 0.05}
	req.ApplyDefaults()
	key := cacheKey("/v1/run", &req)
	body := `{"app":"FFT","n":2,"scale":0.05}`

	var wg sync.WaitGroup
	statuses := make([]int, clients)
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = post(t, ts.Client(), ts.URL+"/v1/run", body)
		}(i)
	}

	// All clients must be joined on the one flight before the leader may
	// compute.
	waitFor(t, "all clients coalesced", func() bool { return s.flights.refsOf(key) == clients })
	close(s.testLeaderGate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d status %d", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d body differs", i)
		}
	}
	if n := s.reg.Counter("server_computations_total").Value(); n != 1 {
		t.Errorf("server_computations_total = %d, want 1 (coalescing failed)", n)
	}
	if n := s.reg.Counter("server_coalesced_total").Value(); n != clients-1 {
		t.Errorf("server_coalesced_total = %d, want %d", n, clients-1)
	}
}

// TestBackpressure proves admission control: with one worker and a
// one-deep queue, the third distinct request is rejected 429 with a
// Retry-After header while the first two eventually succeed.
func TestBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	s.testLeaderGate = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fire := func(n int, status *int, body *[]byte, wg *sync.WaitGroup) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			*status, *body = post(t, ts.Client(), ts.URL+"/v1/run",
				fmt.Sprintf(`{"app":"FFT","n":%d,"scale":0.05}`, n))
		}()
	}

	var wg sync.WaitGroup
	var stA, stB int
	var bA, bB []byte
	fire(1, &stA, &bA, &wg)
	// A's leader holds the only slot (counted, then parked on the gate).
	waitFor(t, "A holding the worker slot", func() bool {
		return s.reg.Counter("server_computations_total").Value() == 1
	})
	fire(2, &stB, &bB, &wg)
	// B's leader is parked in the wait queue.
	waitFor(t, "B queued", func() bool { return s.adm.queued.Load() == 1 })

	// C overflows the queue: immediate 429 with Retry-After.
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"app":"FFT","n":4,"scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 without Retry-After header")
	}
	if n := s.reg.Counter("server_admission_rejected_total").Value(); n != 1 {
		t.Errorf("server_admission_rejected_total = %d, want 1", n)
	}

	// Release the gate: A computes, frees the slot, B follows.
	close(s.testLeaderGate)
	wg.Wait()
	if stA != http.StatusOK || stB != http.StatusOK {
		t.Errorf("queued requests: A=%d B=%d, want 200/200 (bodies %s / %s)", stA, stB, bA, bB)
	}
}

// TestClientDisconnect499 proves a request whose client has gone away is
// answered 499, and the flight it was coalesced on keeps its own context
// until the last waiter leaves.
func TestClientDisconnect499(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: -1})
	gate := make(chan struct{})
	s.testLeaderGate = gate
	defer close(gate)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodPost, "/v1/run",
		strings.NewReader(`{"app":"FFT","n":2,"scale":0.05}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Errorf("disconnected client got %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}

// TestCancelledSweepIs499NotTransient is the regression test for the
// joined-error classification: attempt() wraps a cancellation that lands
// during retry backoff as errors.Join(ctx.Err(), transientErr). The
// transient half must not demote the cancellation to a 500 — the client
// hung up, nothing is wrong with the server.
func TestCancelledSweepIs499NotTransient(t *testing.T) {
	s := New(Config{Workers: 1})
	req := &SweepRequest{Scenario: "I", Apps: []string{"FFT"}, CoreCounts: []int{1, 2},
		Scale: 0.05, Faults: "run-transient=1", Retries: 10}
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	_, err := s.computeSweep(ctx, req)
	if err == nil {
		t.Fatal("cancelled all-transient sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry context.Canceled: %v", err)
	}
	if got := statusOf(err); got != StatusClientClosedRequest {
		t.Errorf("statusOf(%v) = %d, want %d", err, got, StatusClientClosedRequest)
	}
}

// TestStatusOf pins the error → status mapping, most importantly that
// cancellation wins over any other classification an error also carries.
func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{&badRequestError{errors.New("x")}, http.StatusBadRequest},
		{&overloadError{RetryAfter: time.Second}, http.StatusTooManyRequests},
		{context.Canceled, StatusClientClosedRequest},
		{errors.Join(context.Canceled, errors.New("injected transient")), StatusClientClosedRequest},
		{fmt.Errorf("attempt 2: %w", errors.Join(context.Canceled, errors.New("t"))), StatusClientClosedRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusOf(tc.err); got != tc.want {
			t.Errorf("statusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestGracefulShutdown drains a loaded server: every in-flight request
// completes 200, none is dropped, and Shutdown returns cleanly. Run under
// -race this also proves the drain sequencing has no data races.
func TestGracefulShutdown(t *testing.T) {
	const clients = 8
	s := New(Config{Workers: clients, CacheEntries: -1})
	s.testLeaderGate = make(chan struct{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Distinct requests (per-seed) so nothing coalesces: 8 in-flight
	// simulations, each holding a worker slot.
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = post(t, http.DefaultClient, base+"/v1/run",
				fmt.Sprintf(`{"app":"FFT","n":2,"scale":0.05,"seed":%d}`, i+1))
		}(i)
	}
	waitFor(t, "all clients in flight", func() bool {
		return s.reg.Counter("server_computations_total").Value() == clients
	})

	// Shutdown concurrently with the in-flight work.
	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining flag", s.Draining)
	close(s.testLeaderGate)

	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("in-flight client %d dropped during drain: status %d", i, st)
		}
	}
	if err := <-shutErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve after shutdown: %v", err)
	}
}

// TestResponseCacheLRU pins the response cache's bound and eviction
// accounting at the unit level.
func TestResponseCacheLRU(t *testing.T) {
	c := newLRUCache(2)
	r := func(s string) *response { return &response{status: 200, body: []byte(s)} }
	c.put("a", r("a"))
	c.put("b", r("b"))
	if _, ok := c.get("a"); !ok { // refresh a → b is now LRU
		t.Fatal("a missing")
	}
	if ev := c.put("c", r("c")); ev != 1 {
		t.Errorf("evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
	// Disabled cache is inert.
	d := newLRUCache(-1)
	d.put("x", r("x"))
	if _, ok := d.get("x"); ok || d.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}
