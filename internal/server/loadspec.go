// PlaySchedule: open-loop playback of a compiled traffic schedule
// (internal/traffic) through the load generator's fire path. Every
// arrival is dispatched at its absolute offset from play start — the
// schedule, not a ticker, is the clock — tagged with the traffic
// headers so the server and router can account per SLO class, and the
// result carries per-client and per-class breakdowns next to the
// overall step numbers.

package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cmppower/internal/traffic"
)

// PlaySchedule plays sched open-loop against cfg.URL (the base URL;
// each arrival's endpoint path is appended). Only URL, Timeout, and
// Client are read from cfg. The dispatch clock is absolute — arrival n
// fires at start + sched.Arrivals[n].AtMicros, catching up back to back
// after a stall — and the reported Duration is the dispatch window,
// with the post-schedule drain of in-flight requests kept separate.
func PlaySchedule(ctx context.Context, cfg LoadConfig, sched *traffic.Schedule) (*LoadResult, error) {
	if len(sched.Arrivals) == 0 {
		return nil, fmt.Errorf("loadgen: schedule has no arrivals")
	}
	cfg.Body = nil
	cfg.Method = http.MethodPost
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	col := newCollector()
	sem := make(chan struct{}, 4096)
	var wg sync.WaitGroup
	var dropped, dispatched int64
	dispatchedBy := make(map[string]int64)
	start := time.Now()
	for i := range sched.Arrivals {
		a := &sched.Arrivals[i]
		due := start.Add(time.Duration(a.AtMicros) * time.Microsecond)
		if d := time.Until(due); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		dispatched++
		dispatchedBy[a.Client]++
		wg.Add(1)
		go func(a *traffic.Arrival) {
			defer wg.Done()
			defer func() { <-sem }()
			fire(ctx, cfg, col, http.MethodPost, cfg.URL+a.Endpoint, a.Body, a.Client, a.Class)
		}(a)
	}
	// The dispatch window closes at the last arrival (or cancellation);
	// in-flight requests then drain under their per-request timeouts.
	window := time.Since(start)
	drainStart := time.Now()
	wg.Wait()
	step := col.result(window)
	step.Drain = time.Since(drainStart)
	step.RateRPS = sched.TargetRPS
	step.Dropped = dropped
	step.Dispatched = dispatched
	if window > 0 {
		step.AchievedRPS = float64(dispatched) / window.Seconds()
	}
	for name, n := range dispatchedBy {
		b := step.Clients[name]
		if b == nil {
			// All of this client's requests failed before recording (or
			// were never recorded); surface the bucket anyway.
			b = &BucketStats{}
			if step.Clients == nil {
				step.Clients = make(map[string]*BucketStats)
			}
			step.Clients[name] = b
		}
		b.TargetRPS = sched.Targets[name]
		if window > 0 {
			b.AchievedRPS = float64(n) / window.Seconds()
		}
	}
	// Roll client targets up to their classes (a client's class is read
	// off its arrivals) so the per-class rows carry targets too.
	classOf := make(map[string]string)
	for i := range sched.Arrivals {
		a := &sched.Arrivals[i]
		if _, ok := classOf[a.Client]; !ok {
			classOf[a.Client] = a.Class
		}
	}
	for client, target := range sched.Targets {
		if b := step.Classes[classOf[client]]; b != nil {
			b.TargetRPS += target
		}
	}
	for class, b := range step.Classes {
		var n int64
		for client, cnt := range dispatchedBy {
			if classOf[client] == class {
				n += cnt
			}
		}
		if window > 0 {
			b.AchievedRPS = float64(n) / window.Seconds()
		}
	}
	out := &LoadResult{Steps: []StepResult{step}}
	return out, ctx.Err()
}
