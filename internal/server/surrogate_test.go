package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// warmSurrogate drives enough exact-mode traffic through the server for
// the app's fit to activate, then returns the grid bodies it used.
func warmSurrogate(t *testing.T, ts *httptest.Server, s *Server, app string, scale float64) {
	t.Helper()
	for _, n := range []int{1, 2, 4, 8} {
		for _, mhz := range []float64{3200, 2400, 1760} {
			for seed := 1; seed <= 2; seed++ {
				body := fmt.Sprintf(`{"app":%q,"n":%d,"scale":%g,"seed":%d,"freq_mhz":%g}`,
					app, n, scale, seed, mhz)
				if status, b := post(t, ts.Client(), ts.URL+"/v1/run", body); status != http.StatusOK {
					t.Fatalf("warm run status %d: %s", status, b)
				}
			}
		}
	}
	rig, err := s.rigs.get(scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := rig.SurrogateKey(app)
	if s.surr.FitFor(key) == nil {
		t.Fatalf("fit refused after warm grid: %s", s.surr.Reason(key))
	}
}

// TestRunSurrogateMode is the serving-layer contract: a warm fit answers
// surrogate-mode runs from the model with source and bound echoed, the
// served prediction agrees with the simulator within that bound, cold
// keys fall back to simulation, and the header spelling of the opt-in
// behaves like the body field.
func TestRunSurrogateMode(t *testing.T) {
	const scale = 0.05
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	warmSurrogate(t, ts, s, "FFT", scale)

	// In-region surrogate query: fresh seed, trained point.
	body := fmt.Sprintf(`{"app":"FFT","n":4,"scale":%g,"seed":77,"freq_mhz":2400,"mode":"surrogate"}`, scale)
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SurrogateRunResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || sr.Source != "surrogate" {
		t.Fatalf("status %d source %q, want 200/surrogate", resp.StatusCode, sr.Source)
	}
	if sr.Prediction == nil || sr.Measurement != nil {
		t.Fatalf("surrogate answer shape wrong: %+v", sr)
	}
	if !(sr.Bound > 0) {
		t.Fatalf("surrogate answer carries no bound: %+v", sr)
	}
	if got := resp.Header.Get(HeaderSource); got != "surrogate" {
		t.Errorf("%s = %q", HeaderSource, got)
	}
	if b, err := strconv.ParseFloat(resp.Header.Get(HeaderBound), 64); err != nil || b != sr.Bound {
		t.Errorf("%s = %q, want %g", HeaderBound, resp.Header.Get(HeaderBound), sr.Bound)
	}
	if hits := s.reg.Counter("surrogate_hits_total").Value(); hits != 1 {
		t.Errorf("surrogate_hits_total = %d, want 1", hits)
	}

	// The advertised bound must hold against the actual simulation.
	status, exact := post(t, ts.Client(), ts.URL+"/v1/run",
		fmt.Sprintf(`{"app":"FFT","n":4,"scale":%g,"seed":77,"freq_mhz":2400}`, scale))
	if status != http.StatusOK {
		t.Fatalf("exact replay status %d", status)
	}
	var rr RunResponse
	if err := json.Unmarshal(exact, &rr); err != nil {
		t.Fatal(err)
	}
	errT := math.Abs(sr.Prediction.Seconds-rr.Measurement.Seconds) / rr.Measurement.Seconds
	errP := math.Abs(sr.Prediction.PowerW-rr.Measurement.PowerW) / rr.Measurement.PowerW
	if errT > sr.Bound || errP > sr.Bound {
		t.Errorf("served prediction outside advertised bound %g: errT=%g errP=%g", sr.Bound, errT, errP)
	}

	// Cold key: no fit for LU yet, so surrogate mode falls back to a full
	// simulation labelled as such.
	status, fb := post(t, ts.Client(), ts.URL+"/v1/run",
		fmt.Sprintf(`{"app":"LU","n":2,"scale":%g,"seed":5,"mode":"surrogate"}`, scale))
	if status != http.StatusOK {
		t.Fatalf("fallback status %d: %s", status, fb)
	}
	var fbr SurrogateRunResponse
	if err := json.Unmarshal(fb, &fbr); err != nil {
		t.Fatal(err)
	}
	if fbr.Source != "simulation" || fbr.Measurement == nil || fbr.Prediction != nil || fbr.Bound != 0 {
		t.Errorf("fallback shape wrong: %+v", fbr)
	}
	if misses := s.reg.Counter("surrogate_misses_total").Value(); misses != 1 {
		t.Errorf("surrogate_misses_total = %d, want 1", misses)
	}

	// Header spelling: X-Cmppower-Approx is Mode "surrogate".
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(fmt.Sprintf(`{"app":"FFT","n":4,"scale":%g,"seed":78,"freq_mhz":2400}`, scale)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderApprox, "1")
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr SurrogateRunResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Source != "surrogate" {
		t.Errorf("header opt-in served source %q, want surrogate", hr.Source)
	}

	// Mode validation.
	if status, _ := post(t, ts.Client(), ts.URL+"/v1/run",
		`{"app":"FFT","n":2,"mode":"psychic"}`); status != http.StatusBadRequest {
		t.Errorf("mode \"psychic\" accepted with status %d", status)
	}
}

// TestExactModeUnchangedBySurrogate: exact-mode responses are
// byte-identical with the surrogate on, off, and spelled "exact" — the
// fast path must be invisible unless asked for (doctor check 15 proves
// the same across worker counts).
func TestExactModeUnchangedBySurrogate(t *testing.T) {
	on := New(Config{Workers: 2})
	off := New(Config{Workers: 2, SurrogateOff: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()

	warmSurrogate(t, tsOn, on, "FFT", 0.05)
	bodies := []string{
		`{"app":"FFT","n":4,"scale":0.05,"seed":9,"freq_mhz":2400}`,
		`{"app":"FFT","n":4,"scale":0.05,"seed":9,"freq_mhz":2400,"mode":"exact"}`,
	}
	var first []byte
	for _, body := range bodies {
		for _, ts := range []*httptest.Server{tsOn, tsOff} {
			status, got := post(t, ts.Client(), ts.URL+"/v1/run", body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if first == nil {
				first = got
				var rr RunResponse
				if err := json.Unmarshal(got, &rr); err != nil || rr.Measurement == nil {
					t.Fatalf("exact response shape wrong: %s", got)
				}
				continue
			}
			if !bytes.Equal(got, first) {
				t.Errorf("exact-mode response differs (surrogate on/off or mode spelling):\n got %s\nwant %s", got, first)
			}
		}
	}

	// SurrogateOff: surrogate-mode requests still work, always simulated.
	status, got := post(t, tsOff.Client(), tsOff.URL+"/v1/run",
		`{"app":"FFT","n":4,"scale":0.05,"seed":9,"freq_mhz":2400,"mode":"surrogate"}`)
	if status != http.StatusOK {
		t.Fatalf("surrogate-off status %d", status)
	}
	var sr SurrogateRunResponse
	if err := json.Unmarshal(got, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Source != "simulation" || sr.Measurement == nil {
		t.Errorf("surrogate-off served %+v, want simulation fallback", sr)
	}
}

// TestExploreSurrogateMode: surrogate-mode explorations return the full
// grid with per-cell provenance and a winner that was simulated; with no
// warm fits every cell is simulated and the outcome grid matches the
// exact-mode exploration.
func TestExploreSurrogateMode(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"apps":["FFT"],"scale":0.05,"mode":"surrogate"}`
	status, got := post(t, ts.Client(), ts.URL+"/v1/explore", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	var sr SurrogateExploreResponse
	if err := json.Unmarshal(got, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Pruned != 0 || sr.Simulated != len(sr.Outcomes) || len(sr.Outcomes) == 0 {
		t.Fatalf("cold-store exploration pruned %d of %d cells", sr.Pruned, len(sr.Outcomes))
	}
	for _, c := range sr.Outcomes {
		if c.Source != "simulation" {
			t.Errorf("cold-store cell %s/%s source %q", c.Option.Name, c.App, c.Source)
		}
	}
	status, exact := post(t, ts.Client(), ts.URL+"/v1/explore", `{"apps":["FFT"],"scale":0.05}`)
	if status != http.StatusOK {
		t.Fatalf("exact explore status %d", status)
	}
	var er ExploreResponse
	if err := json.Unmarshal(exact, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Outcomes) != len(sr.Outcomes) {
		t.Fatalf("grids differ: %d vs %d cells", len(er.Outcomes), len(sr.Outcomes))
	}
	for i := range er.Outcomes {
		if er.Outcomes[i] != sr.Outcomes[i].Outcome {
			t.Errorf("cell %d differs between exact and surrogate-mode exploration", i)
		}
	}
	for app, want := range er.BestEDP {
		if got := sr.BestEDP[app]; got != want {
			t.Errorf("%s: best %q vs exact %q", app, got, want)
		}
	}
}
