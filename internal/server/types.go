package server

import (
	"fmt"
	"strings"

	"cmppower/internal/experiment"
	"cmppower/internal/explore"
	"cmppower/internal/identity"
	"cmppower/internal/scenario"
	"cmppower/internal/splash"
)

// Request-side defaults. Serving defaults to a reduced workload scale:
// interactive queries want millisecond-class simulations, and the scale
// is part of every cache key so callers that need the full problem size
// simply ask for it.
const (
	defaultScale = 0.1
	defaultSeed  = 1
)

// RunRequest is the body of POST /v1/run: simulate one application on n
// cores and evaluate power and temperature. Zero-valued fields take the
// documented defaults, and the normalized form (after ApplyDefaults) is
// the request's cache/coalescing identity.
type RunRequest struct {
	// App is the SPLASH-2 application model name, e.g. "FFT".
	App string `json:"app"`
	// N is the active core count.
	N int `json:"n"`
	// Scale is the workload scale factor (default 0.1).
	Scale float64 `json:"scale,omitempty"`
	// Seed is the workload seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// FreqMHz selects the operating point (0 = the nominal point).
	FreqMHz float64 `json:"freq_mhz,omitempty"`
	// Faults is an optional fault-injection spec (see faults.ParseSpec).
	// Fault-injected runs bypass the memo layer by design.
	Faults string `json:"faults,omitempty"`
	// DTM enables the dynamic thermal-management controller replay.
	DTM bool `json:"dtm,omitempty"`
	// Mode selects the serving path: "" or "exact" (full simulation,
	// byte-identical to the library) or "surrogate" (the analytical fit
	// may answer when the query is inside its confidence region; the
	// response carries source and error bound either way). The
	// X-Cmppower-Approx header is folded into this field, so Mode is part
	// of the cache identity. "exact" normalizes to "" — the two spell the
	// same request.
	Mode string `json:"mode,omitempty"`
	// Chip is an optional scenario document describing the chip to
	// simulate (see internal/scenario). Omitted means the paper's Table 1
	// baseline. The normalized scenario is part of the cache identity, and
	// the response echoes its content digest.
	Chip *scenario.Scenario `json:"chip,omitempty"`
}

// ApplyDefaults normalizes the request in place so that two requests
// meaning the same run share one cache key.
func (r *RunRequest) ApplyDefaults() {
	if r.Scale == 0 {
		r.Scale = defaultScale
	}
	if r.Seed == 0 {
		r.Seed = defaultSeed
	}
	r.App = strings.TrimSpace(r.App)
	r.Faults = strings.TrimSpace(r.Faults)
	r.Mode = normalizeMode(r.Mode)
	normalizeChip(r.Chip)
}

// Validate rejects requests the rig would reject, with a client-side
// error instead of a burned worker slot.
func (r *RunRequest) Validate() error {
	if _, err := splash.ByName(r.App); err != nil {
		return err
	}
	maxN, err := validateChip(r.Chip)
	if err != nil {
		return err
	}
	if r.N < 1 || r.N > maxN {
		return fmt.Errorf("n %d outside [1,%d]", r.N, maxN)
	}
	if r.Scale <= 0 || r.Scale > 4 {
		return fmt.Errorf("scale %g outside (0,4]", r.Scale)
	}
	if r.FreqMHz < 0 {
		return fmt.Errorf("negative freq_mhz %g", r.FreqMHz)
	}
	return validateMode(r.Mode)
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	Measurement *experiment.Measurement `json:"measurement"`
	// ChipDigest echoes the content digest of the request's chip scenario
	// (absent when the request used the implicit baseline chip).
	ChipDigest string `json:"chip_digest,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a Scenario I (Fig. 3) or
// Scenario II (Fig. 4) sweep over applications × core counts.
type SweepRequest struct {
	// Scenario selects the experiment: "I" (performance target) or "II"
	// (power budget).
	Scenario string `json:"scenario"`
	// Apps lists application names; empty means the full catalog.
	Apps []string `json:"apps,omitempty"`
	// CoreCounts defaults to {1,2,4,8,16}.
	CoreCounts []int `json:"core_counts,omitempty"`
	// Scale, Seed, Faults, DTM as in RunRequest.
	Scale  float64 `json:"scale,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Faults string  `json:"faults,omitempty"`
	DTM    bool    `json:"dtm,omitempty"`
	// Retries bounds per-app attempts for injected-transient failures
	// (default 3).
	Retries int `json:"retries,omitempty"`
	// Chip as in RunRequest: an optional scenario document for the chip.
	Chip *scenario.Scenario `json:"chip,omitempty"`
}

// ApplyDefaults normalizes the request in place (cache identity).
func (r *SweepRequest) ApplyDefaults() {
	r.Scenario = strings.ToUpper(strings.TrimSpace(r.Scenario))
	if len(r.Apps) == 0 {
		r.Apps = splash.Names()
	}
	for i := range r.Apps {
		r.Apps[i] = strings.TrimSpace(r.Apps[i])
	}
	if len(r.CoreCounts) == 0 {
		r.CoreCounts = []int{1, 2, 4, 8, 16}
	}
	if r.Scale == 0 {
		r.Scale = defaultScale
	}
	if r.Seed == 0 {
		r.Seed = defaultSeed
	}
	if r.Retries == 0 {
		r.Retries = experiment.DefaultRetryConfig().Attempts
	}
	r.Faults = strings.TrimSpace(r.Faults)
	normalizeChip(r.Chip)
}

// Validate rejects malformed sweeps before admission.
func (r *SweepRequest) Validate() error {
	if r.Scenario != "I" && r.Scenario != "II" {
		return fmt.Errorf("scenario %q (want I or II)", r.Scenario)
	}
	for _, name := range r.Apps {
		if _, err := splash.ByName(name); err != nil {
			return err
		}
	}
	maxN, err := validateChip(r.Chip)
	if err != nil {
		return err
	}
	for _, n := range r.CoreCounts {
		if n < 1 || n > maxN {
			return fmt.Errorf("core count %d outside [1,%d]", n, maxN)
		}
	}
	if r.Scale <= 0 || r.Scale > 4 {
		return fmt.Errorf("scale %g outside (0,4]", r.Scale)
	}
	if r.Retries < 1 || r.Retries > 10 {
		return fmt.Errorf("retries %d outside [1,10]", r.Retries)
	}
	return nil
}

// SweepAppResult is one application's outcome in a SweepResponse; the
// sweep engine's SweepOutcome with its error flattened to a string so
// the response is JSON-serializable and byte-stable.
type SweepAppResult struct {
	App      string                       `json:"app"`
	Attempts int                          `json:"attempts"`
	I        *experiment.ScenarioIResult  `json:"scenario_i,omitempty"`
	II       *experiment.ScenarioIIResult `json:"scenario_ii,omitempty"`
	Error    string                       `json:"error,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Scenario string           `json:"scenario"`
	BudgetW  float64          `json:"budget_w,omitempty"`
	Outcomes []SweepAppResult `json:"outcomes"`
	// ChipDigest echoes the request chip's content digest (absent for the
	// implicit baseline chip).
	ChipDigest string `json:"chip_digest,omitempty"`
}

// NewSweepResponse flattens sweep outcomes into the wire form. Exported
// so the doctor check can build the expected body straight from a
// library-level sweep and compare bytes.
func NewSweepResponse(scenario string, budgetW float64, outcomes []experiment.SweepOutcome) *SweepResponse {
	resp := &SweepResponse{Scenario: scenario, Outcomes: make([]SweepAppResult, 0, len(outcomes))}
	if scenario == "II" {
		resp.BudgetW = budgetW
	}
	for _, o := range outcomes {
		r := SweepAppResult{App: o.App, Attempts: o.Attempts, I: o.I, II: o.II}
		if o.Err != nil {
			r.Error = o.Err.Error()
		}
		resp.Outcomes = append(resp.Outcomes, r)
	}
	return resp
}

// ExploreRequest is the body of POST /v1/explore: the iso-area
// design-space exploration over the standard chip organizations.
type ExploreRequest struct {
	// Apps lists application names; empty means the explore command's
	// default quartet.
	Apps []string `json:"apps,omitempty"`
	// Scale is the workload scale factor (default 0.1).
	Scale float64 `json:"scale,omitempty"`
	// Mode as in RunRequest: "surrogate" lets the active fits prune
	// clearly-dominated cells instead of simulating them, with per-cell
	// provenance in the response.
	Mode string `json:"mode,omitempty"`
	// Chip as in RunRequest. The exploration varies the organization
	// (core count, width, L2), so the scenario contributes its global axes
	// — node, die, stacking, thermal, ladder, memory switches — while its
	// core count, DVFS domains, and class assignment are superseded per
	// option (see explore.ExploreScenario).
	Chip *scenario.Scenario `json:"chip,omitempty"`
}

// ApplyDefaults normalizes the request in place (cache identity).
func (r *ExploreRequest) ApplyDefaults() {
	if len(r.Apps) == 0 {
		r.Apps = []string{"Barnes", "FMM", "Ocean", "Radix"}
	}
	for i := range r.Apps {
		r.Apps[i] = strings.TrimSpace(r.Apps[i])
	}
	if r.Scale == 0 {
		r.Scale = defaultScale
	}
	r.Mode = normalizeMode(r.Mode)
	normalizeChip(r.Chip)
}

// Validate rejects malformed explorations before admission.
func (r *ExploreRequest) Validate() error {
	for _, name := range r.Apps {
		if _, err := splash.ByName(name); err != nil {
			return err
		}
	}
	if _, err := validateChip(r.Chip); err != nil {
		return err
	}
	if r.Scale <= 0 || r.Scale > 4 {
		return fmt.Errorf("scale %g outside (0,4]", r.Scale)
	}
	return validateMode(r.Mode)
}

// ExploreResponse is the body of a successful POST /v1/explore.
type ExploreResponse struct {
	Outcomes []explore.Outcome `json:"outcomes"`
	// BestEDP maps each application to the organization with the lowest
	// EDP, in sorted app order inside the JSON object.
	BestEDP map[string]string `json:"best_edp"`
	// ChipDigest echoes the request chip's content digest (absent for the
	// implicit baseline chip).
	ChipDigest string `json:"chip_digest,omitempty"`
}

// NewExploreResponse assembles the wire form of an exploration.
func NewExploreResponse(outs []explore.Outcome) *ExploreResponse {
	resp := &ExploreResponse{Outcomes: outs, BestEDP: make(map[string]string)}
	for app, o := range explore.BestByEDP(outs) {
		resp.BestEDP[app] = o.Option.Name
	}
	return resp
}

// normalizeChip canonicalizes an optional chip scenario in place so two
// documents meaning the same chip share one cache key (nil is a no-op —
// the absent chip is the baseline).
func normalizeChip(sc *scenario.Scenario) {
	if sc != nil {
		sc.Normalize()
	}
}

// validateChip validates an optional chip scenario and returns the
// request's core-count bound: the scenario's physical core count when one
// is given, the baseline's 16 otherwise.
func validateChip(sc *scenario.Scenario) (maxN int, err error) {
	if sc == nil {
		return 16, nil
	}
	if err := sc.Validate(); err != nil {
		return 0, fmt.Errorf("chip: %w", err)
	}
	return sc.Chip.TotalCores, nil
}

// chipDigest returns the response echo of an optional chip scenario: its
// full content digest, or "" when the request used the implicit baseline.
// Callers validate first, so the digest cannot fail.
func chipDigest(sc *scenario.Scenario) string {
	if sc == nil {
		return ""
	}
	d, err := sc.Digest()
	if err != nil {
		return ""
	}
	return d
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// cacheKey derives the canonical identity of a normalized request. The
// definition lives in internal/identity so the fleet router hashes the
// exact key the response cache and singleflight group here key on —
// that shared identity is what makes affinity routing keep each shard's
// caches hot.
func cacheKey(path string, normalized any) string {
	return identity.Key(path, normalized)
}

// resolveApps resolves names in input order (the sweep engine preserves
// input order, so the key must too — no sorting, just trimming); kept
// here so handlers share one resolver.
func resolveApps(names []string) ([]splash.App, error) {
	apps := make([]splash.App, 0, len(names))
	for _, name := range names {
		a, err := splash.ByName(name)
		if err != nil {
			return nil, err
		}
		apps = append(apps, a)
	}
	return apps, nil
}
