// Package server exposes the whole cmppower model as a long-running
// HTTP JSON service: single runs (POST /v1/run), Scenario I/II sweeps
// (POST /v1/sweep), design-space exploration (POST /v1/explore), plus
// liveness (GET /healthz), readiness (GET /readyz) and a live Prometheus
// text exposition (GET /metrics) of the shared obs registry.
//
// The hot path is production-shaped (DESIGN.md §10):
//
//   - Coalescing: identical concurrent requests share one simulation via
//     a singleflight keyed on the normalized request — the same identity
//     the experiment memo cache keys on underneath.
//   - Response cache: a size-bounded LRU of serialized 200 responses,
//     layered over the (LRU-bounded) measurement memo cache.
//   - Admission control: a fixed simulation worker pool plus a bounded
//     wait queue; overflow is rejected with 429 and a Retry-After
//     estimate derived from the observed run-duration EWMA.
//   - Deadlines: every request carries a context with the server's
//     request timeout, propagated into the cancellable sweep engine; a
//     client disconnect surfaces as 499 (client closed request), never
//     as a retried transient.
//   - Graceful shutdown: readiness flips first, the HTTP server then
//     drains in-flight requests, and only afterwards is the flight base
//     context cancelled.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cmppower/internal/experiment"
	"cmppower/internal/explore"
	"cmppower/internal/faults"
	"cmppower/internal/obs"
	"cmppower/internal/scenario"
	"cmppower/internal/surrogate"
	"cmppower/internal/traffic"
)

// StatusClientClosedRequest is the 499 status the server reports when
// the client disconnected before the response was ready (nginx's code;
// Go's stdlib has no name for it).
const StatusClientClosedRequest = 499

// Config parameterizes a Server. The zero value gives the documented
// defaults.
type Config struct {
	// Workers bounds concurrent simulations (<= 0 means GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot before the
	// server answers 429 (<= 0 means 4× Workers).
	QueueDepth int
	// CacheEntries bounds the LRU response cache (< 0 disables it; 0
	// means 1024).
	CacheEntries int
	// MemoCapacity bounds each rig's measurement memo cache (<= 0 means
	// experiment.DefaultMemoCapacity).
	MemoCapacity int
	// RequestTimeout is the per-request simulation deadline (<= 0 means
	// 120 s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (<= 0 means 1 MiB).
	MaxBodyBytes int64
	// SurrogateOff disables the surrogate fast path: no store is built,
	// no runs train fits, and surrogate-mode requests always fall back to
	// simulation. The zero value (surrogate on) changes nothing about
	// exact-mode responses — doctor check 15 proves they stay
	// byte-identical either way.
	SurrogateOff bool
	// Registry collects server and simulation metrics; nil allocates a
	// fresh one (GET /metrics always has something to serve).
	Registry *obs.Registry
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	switch {
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	}
	if c.MemoCapacity <= 0 {
		c.MemoCapacity = experiment.DefaultMemoCapacity
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the HTTP serving layer. Create with New, mount via Handler
// (or Serve/ListenAndServe), stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	adm     *admission
	flights *flightGroup
	cache   *lruCache
	rigs    *rigPool
	surr    *surrogate.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	httpSrv  *http.Server
	draining atomic.Bool
	inflight atomic.Int64

	// testLeaderGate, when non-nil, blocks every flight leader just
	// before it computes; tests use it to sequence coalescing and
	// backpressure deterministically.
	testLeaderGate chan struct{}
}

// New builds a Server; no sockets are opened until Serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	var surr *surrogate.Store
	if !cfg.SurrogateOff {
		surr = surrogate.NewStore(surrogate.Options{Registry: cfg.Registry})
	}
	return &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		adm:        newAdmission(cfg.Workers, cfg.QueueDepth),
		flights:    newFlightGroup(),
		cache:      newLRUCache(cfg.CacheEntries),
		rigs:       newRigPool(cfg.Registry, cfg.MemoCapacity, surr),
		surr:       surr,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

// SurrogateStore exposes the server's fit store (nil when SurrogateOff);
// the analyze command and tests read fits and refusal reasons off it.
func (s *Server) SurrogateStore() *surrogate.Store { return s.surr }

// Handler returns the server's routing handler (also usable under
// httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument(s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument(s.handleSweep))
	mux.HandleFunc("POST /v1/explore", s.instrument(s.handleExplore))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on ln until Shutdown; it returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe is Serve on a fresh TCP listener.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the server: readiness flips to 503, the HTTP layer
// stops accepting and waits for in-flight requests (bounded by ctx),
// and only then is the flight base context cancelled — so a clean drain
// never cancels a simulation a connected client is still waiting on.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.baseCancel()
	return err
}

// Close abruptly stops the server: the flight base context is cancelled
// first (in-flight simulations die immediately), then every listener and
// active connection is closed mid-stream. This is the chaos kill path a
// fleet uses to model a crashed shard — a clean stop is Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.baseCancel()
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// Draining reports whether Shutdown has begun (readyz's answer).
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps a compute handler with the request-level metrics —
// overall and per SLO class, read from the X-Cmppower-Class header the
// traffic layer tags requests with (untagged requests count under the
// catch-all class) — and the per-request deadline.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		class := traffic.NormalizeClass(r.Header.Get(traffic.HeaderClass))
		s.reg.VolatileCounter("server_requests_total").Add(1)
		s.reg.VolatileCounter(obs.WithClass("server_class_requests_total", class)).Add(1)
		// Touch the class's 429 counter so the family is visible on
		// /metrics at zero, before any rejection happens.
		s.reg.VolatileCounter(obs.WithClass("server_class_429_total", class)).Add(0)
		s.reg.VolatileGauge("server_inflight").Set(float64(s.inflight.Add(1)))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			s.reg.VolatileGauge("server_inflight").Set(float64(s.inflight.Add(-1)))
			elapsed := time.Since(start).Seconds()
			s.reg.VolatileHistogram("server_request_seconds", requestSecondsBounds).
				Observe(elapsed)
			s.reg.VolatileHistogram(obs.WithClass("server_class_request_seconds", class), requestSecondsBounds).
				Observe(elapsed)
			if sw.status == http.StatusTooManyRequests {
				s.reg.VolatileCounter(obs.WithClass("server_class_429_total", class)).Add(1)
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(sw, r.WithContext(ctx))
	}
}

// statusWriter records the response status so instrument can attribute
// outcomes (429s in particular) to the request's SLO class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// requestSecondsBounds bins request latency from cache-hit to long sweep.
var requestSecondsBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60}

// handleHealthz is liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 once draining so load balancers stop
// routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the live registry as Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteText(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// handleRun serves POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Mode) == "" && approxRequested(r) {
		req.Mode = ModeSurrogate
	}
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Mode == ModeSurrogate {
		s.handleRunSurrogate(w, r, &req)
		return
	}
	s.serveCoalesced(w, r, cacheKey("/v1/run", &req), func(ctx context.Context) (*response, error) {
		m, err := s.computeRun(ctx, &req)
		if err != nil {
			return nil, err
		}
		return okJSON(&RunResponse{Measurement: m, ChipDigest: chipDigest(req.Chip)})
	})
}

// handleSweep serves POST /v1/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveCoalesced(w, r, cacheKey("/v1/sweep", &req), func(ctx context.Context) (*response, error) {
		resp, err := s.computeSweep(ctx, &req)
		if err != nil {
			return nil, err
		}
		return okJSON(resp)
	})
}

// handleExplore serves POST /v1/explore.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Mode) == "" && approxRequested(r) {
		req.Mode = ModeSurrogate
	}
	req.ApplyDefaults()
	if err := req.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Mode == ModeSurrogate {
		s.handleExploreSurrogate(w, r, &req)
		return
	}
	s.serveCoalesced(w, r, cacheKey("/v1/explore", &req), func(ctx context.Context) (*response, error) {
		apps, err := resolveApps(req.Apps)
		if err != nil {
			return nil, err
		}
		outs, err := explore.ExploreScenario(ctx, apps, explore.StandardOptions(), req.Chip, req.Scale, 1, s.reg)
		if err != nil {
			return nil, err
		}
		resp := NewExploreResponse(outs)
		resp.ChipDigest = chipDigest(req.Chip)
		return okJSON(resp)
	})
}

// serveCoalesced is the shared hot path: response cache → singleflight →
// admission → compute. compute runs on the flight's context (derived
// from the server base context plus the request timeout), so it survives
// any individual client's disconnect while at least one request still
// wants the answer.
func (s *Server) serveCoalesced(w http.ResponseWriter, r *http.Request, key string, compute func(context.Context) (*response, error)) {
	if resp, ok := s.cache.get(key); ok {
		s.reg.VolatileCounter("server_cache_hits_total").Add(1)
		s.writeResponse(w, resp)
		return
	}
	s.reg.VolatileCounter("server_cache_misses_total").Add(1)

	f, leader := s.flights.join(s.baseCtx, key)
	defer s.flights.leave(key, f)
	if leader {
		go s.lead(key, f, compute)
	} else {
		s.reg.VolatileCounter("server_coalesced_total").Add(1)
	}
	select {
	case <-f.done:
		if f.err != nil {
			s.writeComputeError(w, r, f.err)
			return
		}
		s.writeResponse(w, f.resp)
	case <-r.Context().Done():
		// This client gave up (disconnect or deadline); the flight keeps
		// running for any remaining waiters — leave() handles the
		// nobody-left cancellation.
		s.writeComputeError(w, r, r.Context().Err())
	}
}

// lead runs one flight to completion: admission, the per-request
// deadline, the computation, and publication into the response cache.
func (s *Server) lead(key string, f *flight, compute func(context.Context) (*response, error)) {
	s.reg.VolatileGauge("server_queue_depth").Set(float64(s.adm.queued.Load()))
	release, err := s.adm.acquire(f.ctx)
	if err != nil {
		if _, ok := retryAfterHeader(err); ok {
			s.reg.VolatileCounter("server_admission_rejected_total").Add(1)
		}
		s.flights.finish(key, f, nil, err)
		return
	}
	defer release()
	s.reg.VolatileCounter("server_computations_total").Add(1)
	if s.testLeaderGate != nil {
		<-s.testLeaderGate
	}
	ctx, cancel := context.WithTimeout(f.ctx, s.cfg.RequestTimeout)
	defer cancel()
	start := time.Now()
	resp, err := compute(ctx)
	s.adm.observe(time.Since(start))
	if err != nil {
		s.flights.finish(key, f, nil, err)
		return
	}
	if resp.status == http.StatusOK {
		if evicted := s.cache.put(key, resp); evicted > 0 {
			s.reg.VolatileCounter("server_cache_evictions_total").Add(int64(evicted))
		}
		s.reg.VolatileGauge("server_cache_entries").Set(float64(s.cache.len()))
	}
	s.flights.finish(key, f, resp, nil)
}

// computeRun executes one RunRequest on the (scale, chip) pooled rig.
func (s *Server) computeRun(ctx context.Context, req *RunRequest) (*experiment.Measurement, error) {
	rig, err := s.rigs.get(req.Scale, req.Chip)
	if err != nil {
		return nil, err
	}
	w, err := s.requestRig(rig, req.Seed, req.Faults, req.DTM)
	if err != nil {
		return nil, err
	}
	app, err := resolveApps([]string{req.App})
	if err != nil {
		return nil, err
	}
	point := w.Table.Nominal()
	if req.FreqMHz > 0 {
		point = w.Table.PointFor(req.FreqMHz * 1e6)
	}
	if !app[0].RunsOn(req.N) {
		return nil, &badRequestError{fmt.Errorf("%s does not run on %d cores", req.App, req.N)}
	}
	return w.RunAppSeeded(ctx, app[0], req.N, point, req.Seed)
}

// computeSweep executes one SweepRequest on the scale's pooled rig,
// serially per request — concurrency comes from concurrent requests,
// each holding one admission slot, so -j bounds total simulation work.
func (s *Server) computeSweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	rig, err := s.rigs.get(req.Scale, req.Chip)
	if err != nil {
		return nil, err
	}
	w, err := s.requestRig(rig, req.Seed, req.Faults, req.DTM)
	if err != nil {
		return nil, err
	}
	apps, err := resolveApps(req.Apps)
	if err != nil {
		return nil, err
	}
	rc := experiment.DefaultRetryConfig()
	rc.Attempts = req.Retries
	cfg := experiment.SweepConfig{Retry: rc, Workers: 1}
	var outcomes []experiment.SweepOutcome
	switch req.Scenario {
	case "I":
		outcomes, err = w.SweepScenarioIWith(ctx, apps, req.CoreCounts, cfg)
	case "II":
		outcomes, err = w.SweepScenarioIIWith(ctx, apps, req.CoreCounts, cfg)
	}
	if err != nil {
		// Cancellation/timeout of the whole sweep: the partial result is
		// not served — the error carries the context cause to statusOf.
		return nil, err
	}
	resp := NewSweepResponse(req.Scenario, w.BudgetW(), outcomes)
	resp.ChipDigest = chipDigest(req.Chip)
	return resp, nil
}

// requestRig clones the pooled rig for one request, applying the
// request's seed, fault spec, and DTM switch. The clone shares the
// parent's memo cache and registry; fault-injected clones bypass the
// memo by construction.
func (s *Server) requestRig(rig *experiment.Rig, seed uint64, faultSpec string, dtm bool) (*experiment.Rig, error) {
	w := rig.Clone()
	w.Seed = seed
	if faultSpec != "" {
		inj, err := faults.ParseSpec(faultSpec, seed)
		if err != nil {
			return nil, &badRequestError{err}
		}
		w.Faults = inj
	}
	if dtm {
		d := experiment.DefaultDTMConfig()
		w.DTM = &d
	}
	return w, nil
}

// badRequestError marks a client-side error discovered after decoding.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// statusOf maps a computation error to its HTTP status. Order matters:
// client cancellation must win over the transient classification an
// attempt() joined error also carries — a disconnected client is a 499,
// never a retried 500.
func statusOf(err error) int {
	var br *badRequestError
	var oe *overloadError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.As(err, &oe):
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// writeComputeError renders a failed computation, attaching Retry-After
// on overload.
func (s *Server) writeComputeError(w http.ResponseWriter, r *http.Request, err error) {
	status := statusOf(err)
	if ra, ok := retryAfterHeader(err); ok {
		w.Header().Set("Retry-After", ra)
	}
	// A 499 usually goes nowhere (the client hung up), but a request
	// whose own deadline fired while coalesced on a live flight still
	// reads it.
	s.writeError(w, status, err)
}

// writeError renders the uniform JSON error body and counts the
// response class.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	body, mErr := json.Marshal(&errorBody{Error: err.Error()})
	if mErr != nil {
		body = []byte(`{"error":"internal"}`)
	}
	s.writeResponse(w, &response{status: status, body: body})
}

// writeResponse writes a materialized response and counts its class.
func (s *Server) writeResponse(w http.ResponseWriter, resp *response) {
	s.countStatus(resp.status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// countStatus publishes per-class (and a few exact) response counters.
func (s *Server) countStatus(status int) {
	switch {
	case status == http.StatusTooManyRequests:
		s.reg.VolatileCounter("server_responses_429_total").Add(1)
	case status == StatusClientClosedRequest:
		s.reg.VolatileCounter("server_responses_499_total").Add(1)
	case status >= 200 && status < 300:
		s.reg.VolatileCounter("server_responses_2xx_total").Add(1)
	case status >= 400 && status < 500:
		s.reg.VolatileCounter("server_responses_4xx_total").Add(1)
	default:
		s.reg.VolatileCounter("server_responses_5xx_total").Add(1)
	}
}

// okJSON serializes a 200 payload exactly as json.Marshal emits it, so
// a cached body, a coalesced body, and a direct library marshal of the
// same value are byte-identical (doctor check 12 compares them).
func okJSON(v any) (*response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return &response{status: http.StatusOK, body: body}, nil
}

// decodeJSON strictly decodes one JSON body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// rigKey identifies one pooled rig: the workload scale plus the chip's
// scenario cache identity — empty for the implicit baseline chip and for
// scenario documents canonically equal to it (those share the legacy
// rig, and with it every memo and surrogate cache entry, bit for bit),
// the scenario's content digest otherwise.
type rigKey struct {
	scale float64
	chip  string
}

// rigPool caches calibrated rigs by (scale, chip). The first request for
// each chip pays one full build (calibration: thermal solves); every
// later scale of that chip derives from its ancestor via CloneForScale —
// a struct copy, since nothing in the apparatus depends on the scale and
// the thermal factorization is pooled process-wide. Derived rigs share
// their ancestor's memo cache (entries key on scale, so they never
// cross), making the memo budget a single bound per chip.
type rigPool struct {
	mu       sync.Mutex
	reg      *obs.Registry
	memoCap  int
	surr     *surrogate.Store
	capacity int
	bases    map[string]*experiment.Rig // per-chip ancestors for CloneForScale
	rigs     map[rigKey]*experiment.Rig
	order    []rigKey // LRU, last = most recently used
}

func newRigPool(reg *obs.Registry, memoCap int, surr *surrogate.Store) *rigPool {
	return &rigPool{reg: reg, memoCap: memoCap, surr: surr, capacity: 8,
		bases: make(map[string]*experiment.Rig), rigs: make(map[rigKey]*experiment.Rig)}
}

// chipIdent maps an optional (already validated) chip scenario to its
// pool identity: "" for nil and for baseline-equivalent documents, the
// content digest otherwise — the same collapsing the experiment layer's
// cache keys perform.
func chipIdent(sc *scenario.Scenario) (string, error) {
	if sc == nil {
		return "", nil
	}
	baseline, err := sc.IsBaseline()
	if err != nil || baseline {
		return "", err
	}
	return sc.Digest()
}

// get returns the rig for (scale, chip), deriving it on first use (a
// clone of the chip's ancestor when one exists, a full build otherwise)
// and evicting the least-recently-used rig past the pool bound. The
// baseline ancestor is kept forever even after its scales are evicted;
// a scenario chip's ancestor is released once no pooled scale still
// derives from it.
func (p *rigPool) get(scale float64, chip *scenario.Scenario) (*experiment.Rig, error) {
	ident, err := chipIdent(chip)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := rigKey{scale: scale, chip: ident}
	if rig, ok := p.rigs[key]; ok {
		p.touch(key)
		return rig, nil
	}
	var rig *experiment.Rig
	if base := p.bases[ident]; base != nil {
		rig, err = base.CloneForScale(scale)
	} else {
		if ident == "" {
			// Baseline-equivalent scenario bodies build the plain legacy rig:
			// NewRigFromScenario on them is bit-identical anyway, and this
			// keeps one shared ancestor for the common case.
			rig, err = experiment.NewRig(scale)
		} else {
			rig, err = experiment.NewRigFromScenario(chip, scale)
		}
		if err == nil {
			rig.Obs = p.reg
			rig.EnableMemoBounded(p.memoCap)
			// Every simulated run trains the surrogate; scale-derived and
			// per-request clones share the pointer like the memo cache.
			rig.Surrogate = p.surr
			p.bases[ident] = rig
		}
	}
	if err != nil {
		return nil, err
	}
	p.rigs[key] = rig
	p.order = append(p.order, key)
	if len(p.order) > p.capacity {
		evict := p.order[0]
		p.order = p.order[1:]
		delete(p.rigs, evict)
		p.dropBaseIfOrphan(evict.chip)
		p.reg.VolatileCounter("server_rig_evictions_total").Add(1)
	}
	p.reg.VolatileGauge("server_rigs").Set(float64(len(p.rigs)))
	return rig, nil
}

// dropBaseIfOrphan releases a scenario chip's ancestor once no pooled
// scale still derives from it. The baseline ancestor ("" ident) is kept
// forever: it is the common case, and holding it makes a re-requested
// scale a struct copy instead of a recalibration.
func (p *rigPool) dropBaseIfOrphan(chip string) {
	if chip == "" {
		return
	}
	for _, k := range p.order {
		if k.chip == chip {
			return
		}
	}
	delete(p.bases, chip)
}

// touch moves key to the most-recently-used end.
func (p *rigPool) touch(key rigKey) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
			return
		}
	}
}
