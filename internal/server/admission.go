// Admission control: a fixed pool of simulation slots fronted by a
// bounded wait queue. A request either holds a slot (simulating), waits
// in the queue (bounded, cancellable), or is rejected with 429 and a
// Retry-After estimate — the server never builds an unbounded backlog,
// which is what turns an overload blip into a latency collapse.

package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"cmppower/internal/identity"
)

// errOverloaded is returned when the wait queue is full; it carries the
// Retry-After estimate the HTTP layer surfaces.
type overloadError struct {
	RetryAfter time.Duration
}

func (e *overloadError) Error() string {
	return fmt.Sprintf("overloaded: retry after %s", e.RetryAfter.Round(time.Second))
}

// admission is the bounded worker pool plus wait queue.
type admission struct {
	slots    chan struct{} // capacity = worker pool size
	workers  int
	queueCap int64
	queued   atomic.Int64
	// avgRunNs is an EWMA of recent simulation durations, feeding the
	// Retry-After estimate. Stored as nanoseconds for atomic updates.
	avgRunNs atomic.Int64
	// jitterSeq numbers rejections; hashing it jitters each Retry-After
	// deterministically (no global RNG).
	jitterSeq atomic.Uint64
}

func newAdmission(workers, queueDepth int) *admission {
	a := &admission{
		slots:    make(chan struct{}, workers),
		workers:  workers,
		queueCap: int64(queueDepth),
	}
	a.avgRunNs.Store(int64(50 * time.Millisecond)) // optimistic prior
	return a
}

// acquire obtains a simulation slot, waiting in the bounded queue if the
// pool is busy. It returns a release func on success; an *overloadError
// when the queue is full; or ctx's error if the caller gives up while
// queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		return nil, &overloadError{RetryAfter: a.retryAfter()}
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// observe folds one simulation duration into the EWMA (α = 1/8).
func (a *admission) observe(d time.Duration) {
	for {
		old := a.avgRunNs.Load()
		next := old + (int64(d)-old)/8
		if a.avgRunNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter estimates how long until a queue slot frees: the backlog
// ahead of a new arrival, spread over the worker pool, at the recent
// average run duration, jittered ±20%. Without jitter every client
// rejected in one overload burst gets the same header and the whole
// cohort retries in one synchronized herd — the jitter decorrelates
// them. The jitter stream hashes a rejection sequence number, so it is
// deterministic given rejection order (no global RNG). Clamped after
// jittering to [1s, 120s] — a header of 0 invites an immediate retry
// storm.
func (a *admission) retryAfter() time.Duration {
	backlog := float64(a.queued.Load() + 1)
	avg := time.Duration(a.avgRunNs.Load())
	est := time.Duration(math.Ceil(backlog/float64(a.workers))) * avg
	frac := float64(identity.Mix(a.jitterSeq.Add(1), 0)>>11) / float64(1<<53) // [0,1)
	est = time.Duration(float64(est) * (0.8 + 0.4*frac))
	if est < time.Second {
		return time.Second
	}
	if est > 2*time.Minute {
		return 2 * time.Minute
	}
	return est.Round(time.Second)
}

// retryAfterHeader formats an *overloadError for the Retry-After header
// (whole seconds).
func retryAfterHeader(err error) (string, bool) {
	var oe *overloadError
	if !errors.As(err, &oe) {
		return "", false
	}
	secs := int(math.Ceil(oe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs), true
}
