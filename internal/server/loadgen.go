// Loadgen is the serving layer's in-repo load generator: closed-loop
// (fixed concurrency, each worker fires as soon as the previous response
// lands), open-loop (fixed arrival rate, latency measured under queueing
// like a real external client population), a closed-loop concurrency
// ramp, and traffic-spec playback (PlaySchedule, loadspec.go). It
// reports throughput and the latency distribution (p50/p90/p99 and max)
// per step, so `cmppower serve`'s throughput and tail latency are
// measurable without external tooling.
//
// Open-loop measurement discipline (DESIGN.md §12): arrivals dispatch
// on an absolute schedule (start + n·interval), not a ticker — tickers
// coalesce at sub-millisecond intervals and silently undershoot high
// target rates — and the reported Duration is the dispatch window only,
// with the post-deadline drain of in-flight requests reported
// separately, so ThroughputRPS is never deflated by drain time.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cmppower/internal/traffic"
)

// LoadConfig parameterizes one load generation run.
type LoadConfig struct {
	// URL is the target endpoint (for PlaySchedule: the base URL the
	// schedule's endpoint paths are appended to).
	URL string
	// Method defaults to POST when Body is non-empty, GET otherwise.
	Method string
	// Body is the JSON request body template.
	Body []byte
	// Duration is the wall-clock length of each step (default 10 s).
	Duration time.Duration
	// Concurrency is the closed-loop worker count (default 8). Ignored
	// when Ramp is set.
	Concurrency int
	// Rate switches to open-loop mode: arrivals per second, dispatched
	// on an absolute schedule regardless of completions. 0 means closed
	// loop.
	Rate float64
	// Ramp runs one closed-loop step per listed concurrency.
	Ramp []int
	// VaryField, when non-empty, names a top-level JSON field of Body to
	// overwrite with a distinct integer per request — the uncached-path
	// switch (e.g. "seed").
	VaryField string
	// Timeout bounds each request (default 30 s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (c LoadConfig) withDefaults() (LoadConfig, error) {
	if c.URL == "" {
		return c, fmt.Errorf("loadgen: no URL")
	}
	if c.Method == "" {
		if len(c.Body) > 0 {
			c.Method = http.MethodPost
		} else {
			c.Method = http.MethodGet
		}
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	for _, n := range c.Ramp {
		if n <= 0 {
			return c, fmt.Errorf("loadgen: ramp step %d", n)
		}
	}
	if c.Rate < 0 {
		return c, fmt.Errorf("loadgen: negative rate %g", c.Rate)
	}
	if c.Rate > 0 && len(c.Ramp) > 0 {
		return c, fmt.Errorf("loadgen: -rate and -ramp are mutually exclusive")
	}
	if c.VaryField != "" && len(c.Body) > 0 && !json.Valid(c.Body) {
		return c, fmt.Errorf("loadgen: vary field needs a JSON body")
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		}
	}
	return c, nil
}

// BucketStats is one accounting bucket's summary — per client or per
// SLO class — inside a StepResult.
type BucketStats struct {
	// Requests counts completed responses; Errors counts transport
	// failures.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors,omitempty"`
	// Status classes, partitioning Requests (Other is everything not in
	// a named class: 1xx, 3xx, and 4xx other than 429/499).
	Class2xx   int64 `json:"class_2xx"`
	Class429   int64 `json:"class_429,omitempty"`
	Class5xx   int64 `json:"class_5xx,omitempty"`
	Class499   int64 `json:"class_499,omitempty"`
	ClassOther int64 `json:"class_other,omitempty"`
	// TargetRPS and AchievedRPS are filled by schedule playback: the
	// spec's per-client target rate vs the dispatch rate attained.
	TargetRPS   float64 `json:"target_rps,omitempty"`
	AchievedRPS float64 `json:"achieved_rps,omitempty"`
	// Latency percentiles over this bucket's completed requests.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// StepResult is one load step's measurement.
type StepResult struct {
	// Concurrency is the closed-loop worker count (0 in open-loop mode).
	Concurrency int `json:"concurrency,omitempty"`
	// RateRPS is the open-loop target arrival rate (0 in closed loop).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// Duration is the measured dispatch window: open-loop arrivals are
	// only offered inside it, and ThroughputRPS divides by it. The
	// post-deadline wait for in-flight requests is Drain, kept separate
	// so drain time never deflates the reported throughput.
	Duration time.Duration `json:"duration_ns"`
	Drain    time.Duration `json:"drain_ns,omitempty"`
	// Dispatched counts open-loop arrivals actually fired; AchievedRPS
	// is Dispatched over the dispatch window, reported against RateRPS
	// so clock undershoot is visible instead of silent.
	Dispatched  int64   `json:"dispatched,omitempty"`
	AchievedRPS float64 `json:"achieved_rps,omitempty"`
	// Requests counts completed requests; Errors counts transport
	// failures (connection refused, timeout) — HTTP error statuses are
	// counted per code in Status instead.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Dropped counts open-loop arrivals skipped because the in-flight
	// bound was hit (client-side saturation; the latency numbers for
	// completed requests stay honest).
	Dropped int64 `json:"dropped,omitempty"`
	// Status maps HTTP status code → count; the Class* fields summarize
	// it by outcome kind for the CLI table: successes, admission
	// backpressure, server failures, client-closed (499), and a
	// catch-all (ClassOther: 1xx, 3xx, 4xx other than 429/499) so the
	// classes always sum to Requests.
	Status     map[int]int64 `json:"status"`
	Class2xx   int64         `json:"class_2xx"`
	Class429   int64         `json:"class_429,omitempty"`
	Class5xx   int64         `json:"class_5xx,omitempty"`
	Class499   int64         `json:"class_499,omitempty"`
	ClassOther int64         `json:"class_other,omitempty"`
	// Backoffs counts closed-loop worker sleeps after a 429 — honoring
	// the Retry-After header, or the small default backoff when the
	// header is missing (a well-behaved client never spins on 429).
	Backoffs int64 `json:"backoffs,omitempty"`
	// ThroughputRPS is Requests / Duration (dispatch window).
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over completed requests.
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
	// Clients and Classes break the step down per traffic-spec client
	// and per SLO class (schedule playback only; keys marshal sorted).
	Clients map[string]*BucketStats `json:"clients,omitempty"`
	Classes map[string]*BucketStats `json:"classes,omitempty"`
}

// OK reports whether every completed response was 2xx or 429 and no
// transport errors occurred — the smoke gate: under admission control,
// overload rejection is correct behavior, anything else is not.
func (s *StepResult) OK() bool {
	if s.Errors > 0 {
		return false
	}
	for code, n := range s.Status {
		if n > 0 && code != http.StatusTooManyRequests && (code < 200 || code > 299) {
			return false
		}
	}
	return true
}

// LoadResult is a full loadgen run.
type LoadResult struct {
	Steps []StepResult `json:"steps"`
}

// OK reports whether every step passed the smoke gate.
func (r *LoadResult) OK() bool {
	for i := range r.Steps {
		if !r.Steps[i].OK() {
			return false
		}
	}
	return true
}

// sample group: one bucket's raw measurements.
type samples struct {
	latencies []time.Duration
	status    map[int]int64
	errors    int64
}

func newSamples() *samples {
	return &samples{status: make(map[int]int64)}
}

func (s *samples) record(d time.Duration, status int, err error) {
	if err != nil {
		s.errors++
		return
	}
	s.latencies = append(s.latencies, d)
	s.status[status]++
}

// classify folds a status map into the class counters.
func classify(status map[int]int64) (c2xx, c429, c5xx, c499, other int64) {
	for code, n := range status {
		switch {
		case code >= 200 && code <= 299:
			c2xx += n
		case code == http.StatusTooManyRequests:
			c429 += n
		case code == 499: // client closed request
			c499 += n
		case code >= 500:
			c5xx += n
		default: // 1xx, 3xx, 4xx other than 429/499
			other += n
		}
	}
	return
}

// collector accumulates one step's samples, overall and (when requests
// are tagged) per client and per SLO class.
type collector struct {
	mu       sync.Mutex
	all      *samples
	byClient map[string]*samples
	byClass  map[string]*samples
}

func newCollector() *collector {
	return &collector{all: newSamples()}
}

func (c *collector) record(d time.Duration, status int, err error, client, class string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.all.record(d, status, err)
	if client != "" {
		if c.byClient == nil {
			c.byClient = make(map[string]*samples)
		}
		g, ok := c.byClient[client]
		if !ok {
			g = newSamples()
			c.byClient[client] = g
		}
		g.record(d, status, err)
	}
	if class != "" {
		if c.byClass == nil {
			c.byClass = make(map[string]*samples)
		}
		g, ok := c.byClass[class]
		if !ok {
			g = newSamples()
			c.byClass[class] = g
		}
		g.record(d, status, err)
	}
}

// bucket folds one sample group into its summary.
func bucket(s *samples) *BucketStats {
	b := &BucketStats{
		Requests: int64(len(s.latencies)),
		Errors:   s.errors,
	}
	b.Class2xx, b.Class429, b.Class5xx, b.Class499, b.ClassOther = classify(s.status)
	if len(s.latencies) > 0 {
		sorted := append([]time.Duration(nil), s.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		b.P50 = percentile(sorted, 0.50)
		b.P99 = percentile(sorted, 0.99)
	}
	return b
}

// result folds the samples into a StepResult. elapsed is the dispatch
// window, not wall time including drain.
func (c *collector) result(elapsed time.Duration) StepResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := StepResult{
		Duration: elapsed,
		Requests: int64(len(c.all.latencies)),
		Errors:   c.all.errors,
		Status:   c.all.status,
	}
	if elapsed > 0 {
		s.ThroughputRPS = float64(s.Requests) / elapsed.Seconds()
	}
	s.Class2xx, s.Class429, s.Class5xx, s.Class499, s.ClassOther = classify(c.all.status)
	if len(c.all.latencies) > 0 {
		sorted := append([]time.Duration(nil), c.all.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50 = percentile(sorted, 0.50)
		s.P90 = percentile(sorted, 0.90)
		s.P99 = percentile(sorted, 0.99)
		s.Max = sorted[len(sorted)-1]
	}
	for name, g := range c.byClient {
		if s.Clients == nil {
			s.Clients = make(map[string]*BucketStats, len(c.byClient))
		}
		s.Clients[name] = bucket(g)
	}
	for name, g := range c.byClass {
		if s.Classes == nil {
			s.Classes = make(map[string]*BucketStats, len(c.byClass))
		}
		s.Classes[name] = bucket(g)
	}
	return s
}

// percentile reads the nearest-rank percentile from a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// bodyFactory produces per-request bodies: the template verbatim, or
// with VaryField rewritten to a fresh integer each call.
func bodyFactory(cfg LoadConfig) (func() []byte, error) {
	if cfg.VaryField == "" || len(cfg.Body) == 0 {
		return func() []byte { return cfg.Body }, nil
	}
	var tmpl map[string]json.RawMessage
	if err := json.Unmarshal(cfg.Body, &tmpl); err != nil {
		return nil, fmt.Errorf("loadgen: vary body: %w", err)
	}
	var n atomic.Int64
	return func() []byte {
		next := n.Add(1)
		m := make(map[string]json.RawMessage, len(tmpl)+1)
		for k, v := range tmpl {
			m[k] = v
		}
		m[cfg.VaryField] = json.RawMessage(strconv.FormatInt(next, 10))
		b, err := json.Marshal(m)
		if err != nil {
			return cfg.Body
		}
		return b
	}, nil
}

// Load runs the configured load generation and returns per-step results.
func Load(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	nextBody, err := bodyFactory(cfg)
	if err != nil {
		return nil, err
	}
	out := &LoadResult{}
	if cfg.Rate > 0 {
		step, err := openLoop(ctx, cfg, nextBody)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, step)
		return out, nil
	}
	steps := cfg.Ramp
	if len(steps) == 0 {
		steps = []int{cfg.Concurrency}
	}
	for _, conc := range steps {
		step, err := closedLoop(ctx, cfg, conc, nextBody)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, step)
		if ctx.Err() != nil {
			break
		}
	}
	return out, nil
}

// fire issues one request at url and records it under (client, class).
// Tagged requests carry the traffic headers so the server and router
// can label their per-class metrics. It returns the response status and
// any Retry-After hint (0 when absent) so closed-loop workers can honor
// backpressure.
func fire(ctx context.Context, cfg LoadConfig, col *collector, method, url string, body []byte, client, class string) (int, time.Duration) {
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, method, url, bytes.NewReader(body))
	if err != nil {
		col.record(0, 0, err, client, class)
		return 0, 0
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if client != "" {
		req.Header.Set(traffic.HeaderClient, client)
	}
	if class != "" {
		req.Header.Set(traffic.HeaderClass, class)
	}
	start := time.Now()
	resp, err := cfg.Client.Do(req)
	d := time.Since(start)
	if err != nil {
		// The run deadline expiring mid-request is the harness stopping,
		// not a server failure.
		if ctx.Err() != nil {
			return 0, 0
		}
		col.record(d, 0, err, client, class)
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	col.record(d, resp.StatusCode, nil, client, class)
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter
}

// default429Backoff is the closed-loop sleep after a 429 whose
// Retry-After header is missing or zero: without it a worker would spin
// at full speed against the admission queue, which no well-behaved
// client does.
const default429Backoff = 50 * time.Millisecond

// closedLoop runs conc workers for cfg.Duration, each firing
// back-to-back requests. Workers behave like well-behaved clients: a
// 429 puts the worker to sleep for the Retry-After duration — or the
// small default backoff when the header is absent — instead of
// hammering the admission queue, so under overload the measured arrival
// rate self-regulates the way real backed-off clients would. Open-loop
// mode deliberately does not back off: its arrival process models an
// external population the server cannot slow down.
func closedLoop(ctx context.Context, cfg LoadConfig, conc int, nextBody func() []byte) (StepResult, error) {
	col := newCollector()
	stepCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var backoffs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(conc)
	for w := 0; w < conc; w++ {
		go func() {
			defer wg.Done()
			for stepCtx.Err() == nil {
				status, retryAfter := fire(stepCtx, cfg, col, cfg.Method, cfg.URL, nextBody(), "", "")
				if status == http.StatusTooManyRequests {
					if retryAfter <= 0 {
						retryAfter = default429Backoff
					}
					backoffs.Add(1)
					select {
					case <-stepCtx.Done():
					case <-time.After(retryAfter):
					}
				}
			}
		}()
	}
	wg.Wait()
	step := col.result(time.Since(start))
	step.Concurrency = conc
	step.Backoffs = backoffs.Load()
	return step, ctx.Err()
}

// openLoop dispatches arrivals on an absolute schedule (start +
// n·interval) for cfg.Duration. A ticker would coalesce ticks at
// sub-millisecond intervals and silently undershoot the target rate;
// the absolute clock instead catches up after stalls by firing overdue
// arrivals back to back, and AchievedRPS reports what was actually
// offered. The in-flight population is bounded (4096) so a stalled
// server saturates the client visibly (Dropped) instead of exhausting
// its memory.
func openLoop(ctx context.Context, cfg LoadConfig, nextBody func() []byte) (StepResult, error) {
	col := newCollector()
	stepCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, 4096)
	var dropped, dispatched int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for n := int64(0); ; n++ {
		next := start.Add(time.Duration(n) * interval)
		if !next.Before(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-stepCtx.Done():
			case <-time.After(d):
			}
		}
		if stepCtx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		dispatched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			fire(stepCtx, cfg, col, cfg.Method, cfg.URL, nextBody(), "", "")
		}()
	}
	// The dispatch window closes here; everything after is drain.
	window := time.Since(start)
	drainStart := time.Now()
	wg.Wait()
	step := col.result(window)
	step.Drain = time.Since(drainStart)
	step.RateRPS = cfg.Rate
	step.Dropped = dropped
	step.Dispatched = dispatched
	if window > 0 {
		step.AchievedRPS = float64(dispatched) / window.Seconds()
	}
	return step, ctx.Err()
}
