// Loadgen is the serving layer's in-repo load generator: closed-loop
// (fixed concurrency, each worker fires as soon as the previous response
// lands), open-loop (fixed arrival rate, latency measured under queueing
// like a real external client population), and a closed-loop concurrency
// ramp. It reports throughput and the latency distribution (p50/p90/p99
// and max) per step, so `cmppower serve`'s throughput and tail latency
// are measurable without external tooling.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterizes one load generation run.
type LoadConfig struct {
	// URL is the target endpoint.
	URL string
	// Method defaults to POST when Body is non-empty, GET otherwise.
	Method string
	// Body is the JSON request body template.
	Body []byte
	// Duration is the wall-clock length of each step (default 10 s).
	Duration time.Duration
	// Concurrency is the closed-loop worker count (default 8). Ignored
	// when Ramp is set.
	Concurrency int
	// Rate switches to open-loop mode: arrivals per second, dispatched
	// on a fixed clock regardless of completions. 0 means closed loop.
	Rate float64
	// Ramp runs one closed-loop step per listed concurrency.
	Ramp []int
	// VaryField, when non-empty, names a top-level JSON field of Body to
	// overwrite with a distinct integer per request — the uncached-path
	// switch (e.g. "seed").
	VaryField string
	// Timeout bounds each request (default 30 s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (c LoadConfig) withDefaults() (LoadConfig, error) {
	if c.URL == "" {
		return c, fmt.Errorf("loadgen: no URL")
	}
	if c.Method == "" {
		if len(c.Body) > 0 {
			c.Method = http.MethodPost
		} else {
			c.Method = http.MethodGet
		}
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	for _, n := range c.Ramp {
		if n <= 0 {
			return c, fmt.Errorf("loadgen: ramp step %d", n)
		}
	}
	if c.Rate < 0 {
		return c, fmt.Errorf("loadgen: negative rate %g", c.Rate)
	}
	if c.Rate > 0 && len(c.Ramp) > 0 {
		return c, fmt.Errorf("loadgen: -rate and -ramp are mutually exclusive")
	}
	if c.VaryField != "" && len(c.Body) > 0 && !json.Valid(c.Body) {
		return c, fmt.Errorf("loadgen: vary field needs a JSON body")
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		}
	}
	return c, nil
}

// StepResult is one load step's measurement.
type StepResult struct {
	// Concurrency is the closed-loop worker count (0 in open-loop mode).
	Concurrency int `json:"concurrency,omitempty"`
	// RateRPS is the open-loop target arrival rate (0 in closed loop).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// Duration is the measured wall-clock span.
	Duration time.Duration `json:"duration_ns"`
	// Requests counts completed requests; Errors counts transport
	// failures (connection refused, timeout) — HTTP error statuses are
	// counted per code in Status instead.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Dropped counts open-loop arrivals skipped because the in-flight
	// bound was hit (client-side saturation; the latency numbers for
	// completed requests stay honest).
	Dropped int64 `json:"dropped,omitempty"`
	// Status maps HTTP status code → count; the Class* fields summarize
	// it by outcome kind for the CLI table: successes, admission
	// backpressure, server failures, and client-closed (499).
	Status   map[int]int64 `json:"status"`
	Class2xx int64         `json:"class_2xx"`
	Class429 int64         `json:"class_429,omitempty"`
	Class5xx int64         `json:"class_5xx,omitempty"`
	Class499 int64         `json:"class_499,omitempty"`
	// Backoffs counts closed-loop worker sleeps honoring a 429's
	// Retry-After header.
	Backoffs int64 `json:"backoffs,omitempty"`
	// ThroughputRPS is Requests / Duration.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over completed requests.
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
}

// OK reports whether every completed response was 2xx or 429 and no
// transport errors occurred — the serve-smoke gate: under admission
// control, overload rejection is correct behavior, anything else is not.
func (s *StepResult) OK() bool {
	if s.Errors > 0 {
		return false
	}
	for code, n := range s.Status {
		if n > 0 && code != http.StatusTooManyRequests && (code < 200 || code > 299) {
			return false
		}
	}
	return true
}

// LoadResult is a full loadgen run.
type LoadResult struct {
	Steps []StepResult `json:"steps"`
}

// OK reports whether every step passed the smoke gate.
func (r *LoadResult) OK() bool {
	for i := range r.Steps {
		if !r.Steps[i].OK() {
			return false
		}
	}
	return true
}

// collector accumulates one step's samples.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	status    map[int]int64
	errors    int64
}

func newCollector() *collector {
	return &collector{status: make(map[int]int64)}
}

func (c *collector) record(d time.Duration, status int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors++
		return
	}
	c.latencies = append(c.latencies, d)
	c.status[status]++
}

// result folds the samples into a StepResult.
func (c *collector) result(elapsed time.Duration) StepResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := StepResult{
		Duration: elapsed,
		Requests: int64(len(c.latencies)),
		Errors:   c.errors,
		Status:   c.status,
	}
	if elapsed > 0 {
		s.ThroughputRPS = float64(s.Requests) / elapsed.Seconds()
	}
	for code, n := range c.status {
		switch {
		case code >= 200 && code <= 299:
			s.Class2xx += n
		case code == http.StatusTooManyRequests:
			s.Class429 += n
		case code == 499: // client closed request
			s.Class499 += n
		case code >= 500:
			s.Class5xx += n
		}
	}
	if len(c.latencies) > 0 {
		sorted := append([]time.Duration(nil), c.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50 = percentile(sorted, 0.50)
		s.P90 = percentile(sorted, 0.90)
		s.P99 = percentile(sorted, 0.99)
		s.Max = sorted[len(sorted)-1]
	}
	return s
}

// percentile reads the nearest-rank percentile from a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// bodyFactory produces per-request bodies: the template verbatim, or
// with VaryField rewritten to a fresh integer each call.
func bodyFactory(cfg LoadConfig) (func() []byte, error) {
	if cfg.VaryField == "" || len(cfg.Body) == 0 {
		return func() []byte { return cfg.Body }, nil
	}
	var tmpl map[string]json.RawMessage
	if err := json.Unmarshal(cfg.Body, &tmpl); err != nil {
		return nil, fmt.Errorf("loadgen: vary body: %w", err)
	}
	var n atomic.Int64
	return func() []byte {
		next := n.Add(1)
		m := make(map[string]json.RawMessage, len(tmpl)+1)
		for k, v := range tmpl {
			m[k] = v
		}
		m[cfg.VaryField] = json.RawMessage(strconv.FormatInt(next, 10))
		b, err := json.Marshal(m)
		if err != nil {
			return cfg.Body
		}
		return b
	}, nil
}

// Load runs the configured load generation and returns per-step results.
func Load(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	nextBody, err := bodyFactory(cfg)
	if err != nil {
		return nil, err
	}
	out := &LoadResult{}
	if cfg.Rate > 0 {
		step, err := openLoop(ctx, cfg, nextBody)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, step)
		return out, nil
	}
	steps := cfg.Ramp
	if len(steps) == 0 {
		steps = []int{cfg.Concurrency}
	}
	for _, conc := range steps {
		step, err := closedLoop(ctx, cfg, conc, nextBody)
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, step)
		if ctx.Err() != nil {
			break
		}
	}
	return out, nil
}

// fire issues one request and records it. It returns the response
// status and any Retry-After hint (0 when absent) so closed-loop
// workers can honor backpressure.
func fire(ctx context.Context, cfg LoadConfig, col *collector, body []byte) (int, time.Duration) {
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, cfg.Method, cfg.URL, bytes.NewReader(body))
	if err != nil {
		col.record(0, 0, err)
		return 0, 0
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := cfg.Client.Do(req)
	d := time.Since(start)
	if err != nil {
		// The run deadline expiring mid-request is the harness stopping,
		// not a server failure.
		if ctx.Err() != nil {
			return 0, 0
		}
		col.record(d, 0, err)
		return 0, 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	col.record(d, resp.StatusCode, nil)
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter
}

// closedLoop runs conc workers for cfg.Duration, each firing
// back-to-back requests. Workers behave like well-behaved clients: a
// 429 with a Retry-After header puts the worker to sleep for that long
// (bounded by the step deadline) instead of hammering the admission
// queue — so under overload the measured arrival rate self-regulates
// the way real backed-off clients would. Open-loop mode deliberately
// does not back off: its arrival process models an external population
// the server cannot slow down.
func closedLoop(ctx context.Context, cfg LoadConfig, conc int, nextBody func() []byte) (StepResult, error) {
	col := newCollector()
	stepCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var backoffs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(conc)
	for w := 0; w < conc; w++ {
		go func() {
			defer wg.Done()
			for stepCtx.Err() == nil {
				status, retryAfter := fire(stepCtx, cfg, col, nextBody())
				if status == http.StatusTooManyRequests && retryAfter > 0 {
					backoffs.Add(1)
					select {
					case <-stepCtx.Done():
					case <-time.After(retryAfter):
					}
				}
			}
		}()
	}
	wg.Wait()
	step := col.result(time.Since(start))
	step.Concurrency = conc
	step.Backoffs = backoffs.Load()
	return step, ctx.Err()
}

// openLoop dispatches arrivals on a fixed clock for cfg.Duration. The
// in-flight population is bounded (4096) so a stalled server saturates
// the client visibly (Dropped) instead of exhausting its memory.
func openLoop(ctx context.Context, cfg LoadConfig, nextBody func() []byte) (StepResult, error) {
	col := newCollector()
	stepCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sem := make(chan struct{}, 4096)
	var dropped atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
loop:
	for {
		select {
		case <-stepCtx.Done():
			break loop
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				dropped.Add(1)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				fire(stepCtx, cfg, col, nextBody())
			}()
		}
	}
	wg.Wait()
	step := col.result(time.Since(start))
	step.RateRPS = cfg.Rate
	step.Dropped = dropped.Load()
	return step, ctx.Err()
}
