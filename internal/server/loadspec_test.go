package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cmppower/internal/traffic"
)

const playSpecJSON = `{
  "seed": 11,
  "rate_rps": 400,
  "duration_sec": 0.5,
  "clients": [
    {
      "name": "dash",
      "rate_fraction": 0.5,
      "class": "interactive",
      "arrival": {"process": "poisson"},
      "requests": [{"endpoint": "run", "apps": ["FFT"], "cores": [2]}]
    },
    {
      "name": "nightly",
      "rate_fraction": 0.5,
      "class": "batch",
      "arrival": {"process": "fixed"},
      "requests": [{"endpoint": "explore", "apps": ["Ocean"], "scale": 0.05}]
    }
  ]
}`

// TestPlaySchedule plays a compiled two-client spec against a stub and
// checks the request tagging (class/client headers on the wire, correct
// endpoint paths) and the per-client/per-class accounting, including
// achieved-vs-target rates.
func TestPlaySchedule(t *testing.T) {
	spec, err := traffic.ParseSpec(strings.NewReader(playSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := traffic.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	classByPath := make(map[string]map[string]int)
	clients := make(map[string]int)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		if classByPath[r.URL.Path] == nil {
			classByPath[r.URL.Path] = make(map[string]int)
		}
		classByPath[r.URL.Path][r.Header.Get(traffic.HeaderClass)]++
		clients[r.Header.Get(traffic.HeaderClient)]++
		mu.Unlock()
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := PlaySchedule(context.Background(), LoadConfig{
		URL:    ts.URL,
		Client: ts.Client(),
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("steps %d, want 1", len(res.Steps))
	}
	s := res.Steps[0]
	if s.Requests == 0 || !res.OK() {
		t.Fatalf("requests=%d errors=%d OK=%v", s.Requests, s.Errors, res.OK())
	}

	mu.Lock()
	defer mu.Unlock()
	if n := classByPath["/v1/run"][traffic.ClassInteractive]; n == 0 {
		t.Errorf("no interactive-tagged /v1/run requests seen: %v", classByPath)
	}
	if n := classByPath["/v1/explore"][traffic.ClassBatch]; n == 0 {
		t.Errorf("no batch-tagged /v1/explore requests seen: %v", classByPath)
	}
	if clients["dash"] == 0 || clients["nightly"] == 0 {
		t.Errorf("client headers missing: %v", clients)
	}

	for _, name := range []string{"dash", "nightly"} {
		b := s.Clients[name]
		if b == nil {
			t.Fatalf("no bucket for client %q: %v", name, s.Clients)
		}
		if b.Requests == 0 || b.Class2xx != b.Requests {
			t.Errorf("client %q bucket %+v", name, *b)
		}
		if b.TargetRPS != 200 {
			t.Errorf("client %q target %.0f, want 200", name, b.TargetRPS)
		}
		if b.AchievedRPS < 0.5*b.TargetRPS {
			t.Errorf("client %q achieved %.0f vs target %.0f", name, b.AchievedRPS, b.TargetRPS)
		}
	}
	for _, class := range []string{traffic.ClassInteractive, traffic.ClassBatch} {
		b := s.Classes[class]
		if b == nil || b.Requests == 0 {
			t.Fatalf("no bucket for class %q: %v", class, s.Classes)
		}
	}
	if s.AchievedRPS < 0.9*sched.TargetRPS {
		t.Errorf("aggregate achieved %.0f vs target %.0f", s.AchievedRPS, sched.TargetRPS)
	}

	// The step marshals deterministically field-wise (maps sort keys).
	if _, err := json.Marshal(&s); err != nil {
		t.Fatal(err)
	}
}

// TestPlayScheduleEmpty rejects an arrival-free schedule.
func TestPlayScheduleEmpty(t *testing.T) {
	if _, err := PlaySchedule(context.Background(), LoadConfig{URL: "http://x"}, &traffic.Schedule{}); err == nil {
		t.Error("empty schedule accepted")
	}
}

// TestPlayScheduleCancel stops dispatch when the context is cancelled.
func TestPlayScheduleCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	sched := &traffic.Schedule{
		DurationSec: 30,
		Arrivals: []traffic.Arrival{
			{AtMicros: 0, Client: "a", Class: "batch", Endpoint: "/v1/explore", Body: json.RawMessage(`{}`)},
			{AtMicros: 25_000_000, Client: "a", Class: "batch", Endpoint: "/v1/explore", Body: json.RawMessage(`{}`)},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := PlaySchedule(ctx, LoadConfig{URL: ts.URL, Client: ts.Client()}, sched)
	if err == nil {
		t.Error("cancelled play returned nil error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not stop the schedule clock")
	}
	if res == nil || res.Steps[0].Dispatched != 1 {
		t.Errorf("dispatched %+v, want exactly the first arrival", res)
	}
}
