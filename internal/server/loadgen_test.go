package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadClosedLoop drives a fast stub server and checks the basic
// accounting: completed requests, throughput, ordered percentiles.
func TestLoadClosedLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{"app":"FFT","n":2}`),
		Duration:    200 * time.Millisecond,
		Concurrency: 4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("steps %d, want 1", len(res.Steps))
	}
	s := res.Steps[0]
	if s.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if s.Errors != 0 || !res.OK() {
		t.Errorf("errors=%d OK=%v", s.Errors, res.OK())
	}
	if s.ThroughputRPS <= 0 {
		t.Errorf("throughput %g", s.ThroughputRPS)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Errorf("percentiles out of order: p50=%v p90=%v p99=%v max=%v", s.P50, s.P90, s.P99, s.Max)
	}
	if s.Status[http.StatusOK] != s.Requests {
		t.Errorf("status map %v does not account for %d requests", s.Status, s.Requests)
	}
}

// TestLoadRamp runs one step per listed concurrency.
func TestLoadRamp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:      ts.URL,
		Duration: 50 * time.Millisecond,
		Ramp:     []int{1, 3},
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps %d, want 2", len(res.Steps))
	}
	if res.Steps[0].Concurrency != 1 || res.Steps[1].Concurrency != 3 {
		t.Errorf("step concurrencies %d,%d", res.Steps[0].Concurrency, res.Steps[1].Concurrency)
	}
}

// TestLoadOpenLoop checks rate-paced dispatch completes and labels the
// step with the target rate.
func TestLoadOpenLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:      ts.URL,
		Duration: 300 * time.Millisecond,
		Rate:     200,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps[0]
	if s.RateRPS != 200 {
		t.Errorf("rate label %g", s.RateRPS)
	}
	if s.Requests == 0 {
		t.Error("open loop completed no requests")
	}
}

// TestLoadVaryField proves -vary defeats caching: each request body
// carries a distinct value for the named field.
func TestLoadVaryField(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int64]bool)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			App  string `json:"app"`
			N    int    `json:"n"`
			Seed int64  `json:"seed"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		seen[body.Seed] = true
		mu.Unlock()
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{"app":"FFT","n":2}`),
		VaryField:   "seed",
		Duration:    100 * time.Millisecond,
		Concurrency: 2,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("vary run not OK: %+v", res.Steps[0])
	}
	mu.Lock()
	distinct := len(seen)
	mu.Unlock()
	if distinct < 2 {
		t.Errorf("vary field produced %d distinct values, want >= 2", distinct)
	}
	if seen[0] {
		t.Error("a request went out with the unvaried zero seed")
	}
}

// TestStepOK pins the smoke gate: 2xx and 429 pass, anything else fails.
func TestStepOK(t *testing.T) {
	ok := StepResult{Status: map[int]int64{200: 5, 429: 2}}
	if !ok.OK() {
		t.Error("2xx+429 should pass")
	}
	bad := StepResult{Status: map[int]int64{200: 5, 500: 1}}
	if bad.OK() {
		t.Error("500 should fail")
	}
	errs := StepResult{Errors: 1, Status: map[int]int64{200: 5}}
	if errs.OK() {
		t.Error("transport errors should fail")
	}
}

// TestLoadConfigValidation pins the config error paths.
func TestLoadConfigValidation(t *testing.T) {
	bad := []LoadConfig{
		{},                                  // no URL
		{URL: "x", Rate: -1},                // negative rate
		{URL: "x", Ramp: []int{0}},          // non-positive ramp step
		{URL: "x", Rate: 5, Ramp: []int{1}}, // exclusive modes
		{URL: "x", Body: []byte(`{`), VaryField: "seed"}, // unparseable vary body
	}
	for i, cfg := range bad {
		if _, err := Load(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

// TestClosedLoopHonorsRetryAfter: a stub that always answers 429 with
// Retry-After: 1 puts every worker to sleep after its first request, so
// a 300ms step completes roughly one request per worker — not the
// thousands an ill-behaved client would hammer through — and records
// the backoffs and the 429 status class.
func TestClosedLoopHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{}`),
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps[0]
	if s.Backoffs < 4 {
		t.Errorf("backoffs = %d, want >= 4 (one per worker)", s.Backoffs)
	}
	// Each worker fires once, sleeps 1s, and the 300ms step ends first;
	// allow slack for a worker waking near the deadline.
	if n := hits.Load(); n > 8 {
		t.Errorf("%d requests against a backpressuring server, want ~4 (workers ignored Retry-After)", n)
	}
	if s.Class429 != s.Requests || s.Class2xx != 0 {
		t.Errorf("class counts 2xx=%d 429=%d over %d requests", s.Class2xx, s.Class429, s.Requests)
	}
	if !s.OK() {
		t.Error("pure-429 step must pass the smoke gate (backpressure is correct behavior)")
	}
}

// TestStatusClassCounts: the Class* summary partitions the status map.
func TestStatusClassCounts(t *testing.T) {
	col := newCollector()
	for code, n := range map[int]int{200: 3, 204: 1, 429: 2, 499: 1, 500: 2, 404: 1} {
		for i := 0; i < n; i++ {
			col.record(time.Millisecond, code, nil)
		}
	}
	s := col.result(time.Second)
	if s.Class2xx != 4 || s.Class429 != 2 || s.Class499 != 1 || s.Class5xx != 2 {
		t.Errorf("classes 2xx=%d 429=%d 499=%d 5xx=%d, want 4/2/1/2",
			s.Class2xx, s.Class429, s.Class499, s.Class5xx)
	}
}
