package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadClosedLoop drives a fast stub server and checks the basic
// accounting: completed requests, throughput, ordered percentiles.
func TestLoadClosedLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{"app":"FFT","n":2}`),
		Duration:    200 * time.Millisecond,
		Concurrency: 4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("steps %d, want 1", len(res.Steps))
	}
	s := res.Steps[0]
	if s.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if s.Errors != 0 || !res.OK() {
		t.Errorf("errors=%d OK=%v", s.Errors, res.OK())
	}
	if s.ThroughputRPS <= 0 {
		t.Errorf("throughput %g", s.ThroughputRPS)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Errorf("percentiles out of order: p50=%v p90=%v p99=%v max=%v", s.P50, s.P90, s.P99, s.Max)
	}
	if s.Status[http.StatusOK] != s.Requests {
		t.Errorf("status map %v does not account for %d requests", s.Status, s.Requests)
	}
}

// TestLoadRamp runs one step per listed concurrency.
func TestLoadRamp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:      ts.URL,
		Duration: 50 * time.Millisecond,
		Ramp:     []int{1, 3},
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps %d, want 2", len(res.Steps))
	}
	if res.Steps[0].Concurrency != 1 || res.Steps[1].Concurrency != 3 {
		t.Errorf("step concurrencies %d,%d", res.Steps[0].Concurrency, res.Steps[1].Concurrency)
	}
}

// TestLoadOpenLoop checks rate-paced dispatch completes and labels the
// step with the target rate.
func TestLoadOpenLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:      ts.URL,
		Duration: 300 * time.Millisecond,
		Rate:     200,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps[0]
	if s.RateRPS != 200 {
		t.Errorf("rate label %g", s.RateRPS)
	}
	if s.Requests == 0 {
		t.Error("open loop completed no requests")
	}
}

// TestLoadVaryField proves -vary defeats caching: each request body
// carries a distinct value for the named field.
func TestLoadVaryField(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int64]bool)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			App  string `json:"app"`
			N    int    `json:"n"`
			Seed int64  `json:"seed"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		seen[body.Seed] = true
		mu.Unlock()
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{"app":"FFT","n":2}`),
		VaryField:   "seed",
		Duration:    100 * time.Millisecond,
		Concurrency: 2,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("vary run not OK: %+v", res.Steps[0])
	}
	mu.Lock()
	distinct := len(seen)
	mu.Unlock()
	if distinct < 2 {
		t.Errorf("vary field produced %d distinct values, want >= 2", distinct)
	}
	if seen[0] {
		t.Error("a request went out with the unvaried zero seed")
	}
}

// TestStepOK pins the smoke gate: 2xx and 429 pass, anything else fails.
func TestStepOK(t *testing.T) {
	ok := StepResult{Status: map[int]int64{200: 5, 429: 2}}
	if !ok.OK() {
		t.Error("2xx+429 should pass")
	}
	bad := StepResult{Status: map[int]int64{200: 5, 500: 1}}
	if bad.OK() {
		t.Error("500 should fail")
	}
	errs := StepResult{Errors: 1, Status: map[int]int64{200: 5}}
	if errs.OK() {
		t.Error("transport errors should fail")
	}
}

// TestLoadConfigValidation pins the config error paths.
func TestLoadConfigValidation(t *testing.T) {
	bad := []LoadConfig{
		{},                                  // no URL
		{URL: "x", Rate: -1},                // negative rate
		{URL: "x", Ramp: []int{0}},          // non-positive ramp step
		{URL: "x", Rate: 5, Ramp: []int{1}}, // exclusive modes
		{URL: "x", Body: []byte(`{`), VaryField: "seed"}, // unparseable vary body
	}
	for i, cfg := range bad {
		if _, err := Load(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

// TestClosedLoopHonorsRetryAfter: a stub that always answers 429 with
// Retry-After: 1 puts every worker to sleep after its first request, so
// a 300ms step completes roughly one request per worker — not the
// thousands an ill-behaved client would hammer through — and records
// the backoffs and the 429 status class.
func TestClosedLoopHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{}`),
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps[0]
	if s.Backoffs < 4 {
		t.Errorf("backoffs = %d, want >= 4 (one per worker)", s.Backoffs)
	}
	// Each worker fires once, sleeps 1s, and the 300ms step ends first;
	// allow slack for a worker waking near the deadline.
	if n := hits.Load(); n > 8 {
		t.Errorf("%d requests against a backpressuring server, want ~4 (workers ignored Retry-After)", n)
	}
	if s.Class429 != s.Requests || s.Class2xx != 0 {
		t.Errorf("class counts 2xx=%d 429=%d over %d requests", s.Class2xx, s.Class429, s.Requests)
	}
	if !s.OK() {
		t.Error("pure-429 step must pass the smoke gate (backpressure is correct behavior)")
	}
}

// TestStatusClassCounts: the Class* summary partitions the status map —
// every status lands in exactly one class, with ClassOther catching
// 1xx, 3xx, and 4xx other than 429/499, so the classes always sum to
// Requests.
func TestStatusClassCounts(t *testing.T) {
	cases := []struct {
		name   string
		status map[int]int
		want   StepResult // class fields only
	}{
		{
			name:   "full spread",
			status: map[int]int{200: 3, 204: 1, 429: 2, 499: 1, 500: 2, 404: 1},
			want:   StepResult{Class2xx: 4, Class429: 2, Class499: 1, Class5xx: 2, ClassOther: 1},
		},
		{
			name:   "other statuses only",
			status: map[int]int{301: 2, 304: 1, 400: 3, 404: 2, 101: 1},
			want:   StepResult{ClassOther: 9},
		},
		{
			name:   "edge codes",
			status: map[int]int{199: 1, 200: 1, 299: 1, 300: 1, 428: 1, 430: 1, 498: 1, 503: 1},
			want:   StepResult{Class2xx: 2, Class499: 0, Class5xx: 1, ClassOther: 5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := newCollector()
			var total int64
			for code, n := range tc.status {
				for i := 0; i < n; i++ {
					col.record(time.Millisecond, code, nil, "", "")
					total++
				}
			}
			s := col.result(time.Second)
			if s.Class2xx != tc.want.Class2xx || s.Class429 != tc.want.Class429 ||
				s.Class499 != tc.want.Class499 || s.Class5xx != tc.want.Class5xx ||
				s.ClassOther != tc.want.ClassOther {
				t.Errorf("classes 2xx=%d 429=%d 499=%d 5xx=%d other=%d, want %d/%d/%d/%d/%d",
					s.Class2xx, s.Class429, s.Class499, s.Class5xx, s.ClassOther,
					tc.want.Class2xx, tc.want.Class429, tc.want.Class499, tc.want.Class5xx, tc.want.ClassOther)
			}
			if sum := s.Class2xx + s.Class429 + s.Class499 + s.Class5xx + s.ClassOther; sum != total {
				t.Errorf("classes sum to %d over %d requests (a status fell through)", sum, total)
			}
		})
	}
}

// TestClosedLoopDefault429Backoff: a 429 with no Retry-After header
// still puts the worker to sleep for the default backoff instead of
// letting it spin at full speed against the admission queue.
func TestClosedLoopDefault429Backoff(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusTooManyRequests) // no Retry-After
	}))
	defer ts.Close()

	res, err := Load(context.Background(), LoadConfig{
		URL:         ts.URL,
		Body:        []byte(`{}`),
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Steps[0]
	if s.Backoffs < 2 {
		t.Errorf("backoffs = %d, want >= 2 (default backoff must count)", s.Backoffs)
	}
	// 2 workers over 300ms with a 50ms default backoff can fire at most
	// ~7 requests each; a spinning worker would manage thousands.
	if n := hits.Load(); n > 20 {
		t.Errorf("%d requests against header-less 429s, want <= 20 (workers spun without backoff)", n)
	}
}

// TestOpenLoopDrainFreeDuration: a server that stalls responses past
// the step deadline must not inflate the reported Duration — the
// drain is reported separately, and ThroughputRPS divides by the
// dispatch window only.
func TestOpenLoopDrainFreeDuration(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	duration := 200 * time.Millisecond
	done := make(chan *LoadResult, 1)
	go func() {
		res, err := Load(context.Background(), LoadConfig{
			URL:      ts.URL,
			Duration: duration,
			Rate:     50,
			Timeout:  5 * time.Second,
			Client:   ts.Client(),
		})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	// Hold every response well past the step deadline, then release.
	time.Sleep(duration + 300*time.Millisecond)
	close(release)
	res := <-done
	s := res.Steps[0]
	if s.Duration > duration+100*time.Millisecond {
		t.Errorf("Duration %v includes drain (dispatch window was %v)", s.Duration, duration)
	}
	if s.Dispatched == 0 {
		t.Fatal("nothing dispatched")
	}
}

// TestOpenLoopAchievedRate: on an absolute dispatch schedule the
// achieved rate tracks the target within 10% even at a sub-millisecond
// interval, where a ticker-based clock coalesces ticks and silently
// undershoots. A loaded host (race detector, single CPU) can genuinely
// lack the capacity for a 500µs interval, so the target is capped at
// half the host's measured dispatch ceiling — a ticker regression
// undershoots any feasible target, not just a fast host's.
func TestOpenLoopAchievedRate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	load := func(rate float64) StepResult {
		t.Helper()
		res, err := Load(context.Background(), LoadConfig{
			URL:      ts.URL,
			Duration: 500 * time.Millisecond,
			Rate:     rate,
			Client:   ts.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps[0]
	}

	// The ceiling fluctuates with host load, so each attempt re-probes
	// it and a pass on any attempt suffices; a ticker regression
	// undershoots every feasible target on every attempt.
	var s StepResult
	var target float64
	for attempt := 0; attempt < 3; attempt++ {
		// An unsatisfiable rate measures the host's dispatch ceiling.
		ceiling := load(50000).AchievedRPS
		target = 2000.0 // 500µs interval — ticker territory
		if quarter := ceiling / 4; quarter < target {
			target = quarter
		}
		if target < 100 {
			t.Skipf("host dispatch ceiling %.0f rps too low to measure scheduling accuracy", ceiling)
		}
		s = load(target)
		if s.Dispatched == 0 {
			t.Fatal("dispatched count missing")
		}
		if s.AchievedRPS >= 0.9*target && s.AchievedRPS <= 1.1*target {
			return
		}
	}
	t.Errorf("achieved %.0f rps vs target %.0f, want within 10%% on at least one of 3 attempts", s.AchievedRPS, target)
}

// TestPercentileNearestRank pins the nearest-rank edges: single sample,
// two samples, q=0 floor, q=1 ceiling.
func TestPercentileNearestRank(t *testing.T) {
	one := []time.Duration{7}
	if got := percentile(one, 0.5); got != 7 {
		t.Errorf("single sample p50 = %v, want 7", got)
	}
	if got := percentile(one, 0.99); got != 7 {
		t.Errorf("single sample p99 = %v, want 7", got)
	}
	two := []time.Duration{1, 9}
	if got := percentile(two, 0.50); got != 1 {
		t.Errorf("two samples p50 = %v, want 1 (nearest rank)", got)
	}
	if got := percentile(two, 0.99); got != 9 {
		t.Errorf("two samples p99 = %v, want 9", got)
	}
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = time.Duration(i + 1)
	}
	if got := percentile(ten, 0); got != 1 {
		t.Errorf("q=0 = %v, want first sample", got)
	}
	if got := percentile(ten, 1); got != 10 {
		t.Errorf("q=1 = %v, want last sample", got)
	}
	if got := percentile(ten, 0.90); got != 9 {
		t.Errorf("p90 of 1..10 = %v, want 9", got)
	}
}
