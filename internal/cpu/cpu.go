// Package cpu models one Alpha-21264-class processor core at the fidelity
// the paper's evaluation consumes: a 4-wide machine whose compute
// throughput is dependence-limited, whose branches pay a misprediction
// penalty, and whose memory accesses run through the coherent hierarchy
// with partial miss overlap (out-of-order execution and a store buffer
// hide part of the latency).
//
// The model charges time in fractional cycles and counts per-structure
// accesses for the Wattch-style power accounting (internal/power).
package cpu

import (
	"fmt"

	"cmppower/internal/floorplan"
	"cmppower/internal/workload"
)

// MemSystem is the interface the core uses to reach the cache hierarchy.
// internal/cache.Hierarchy implements it.
type MemSystem interface {
	// Access performs a data access and returns the completion cycle.
	Access(core int, addr uint64, write bool, now float64) float64
}

// Config holds the core's microarchitectural parameters. Per-application
// fields (IPCNonMem, IL1MissRate) come from the workload model; the rest
// are EV6-class constants.
type Config struct {
	// IssueWidth bounds IPCNonMem (EV6: 4).
	IssueWidth int
	// IPCNonMem is the dependence-limited IPC of non-memory instructions.
	IPCNonMem float64
	// BranchMissRate is the fraction of branches mispredicted.
	BranchMissRate float64
	// BranchPenaltyCycles is the pipeline refill cost per misprediction.
	BranchPenaltyCycles float64
	// IL1MissRate is the instruction-cache miss rate per instruction;
	// each miss costs one L2 round trip (code is L2-resident).
	IL1MissRate float64
	// IL1MissCycles is the cost of one instruction-fetch miss.
	IL1MissCycles float64
	// FetchWidth groups instructions per I-cache access.
	FetchWidth int
	// LoadMissOverlap is the fraction of a load's beyond-L1 latency hidden
	// by out-of-order execution and MLP.
	LoadMissOverlap float64
	// StoreMissOverlap is the fraction of a store's beyond-L1 latency
	// hidden by the store buffer.
	StoreMissOverlap float64
	// L1HitCycles must match the hierarchy's L1 latency; it is the
	// un-hideable part of every access.
	L1HitCycles float64
}

// DefaultConfig returns EV6-class constants with a generic workload mix.
func DefaultConfig() Config {
	return Config{
		IssueWidth:          4,
		IPCNonMem:           2.0,
		BranchMissRate:      0.05,
		BranchPenaltyCycles: 7,
		IL1MissRate:         0.001,
		IL1MissCycles:       12,
		FetchWidth:          4,
		LoadMissOverlap:     0.3,
		StoreMissOverlap:    0.8,
		L1HitCycles:         2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth < 1:
		return fmt.Errorf("cpu: issue width %d", c.IssueWidth)
	case c.IPCNonMem <= 0 || c.IPCNonMem > float64(c.IssueWidth):
		return fmt.Errorf("cpu: IPCNonMem %g outside (0, %d]", c.IPCNonMem, c.IssueWidth)
	case c.BranchMissRate < 0 || c.BranchMissRate > 1:
		return fmt.Errorf("cpu: branch miss rate %g", c.BranchMissRate)
	case c.BranchPenaltyCycles < 0:
		return fmt.Errorf("cpu: branch penalty %g", c.BranchPenaltyCycles)
	case c.IL1MissRate < 0 || c.IL1MissRate > 1:
		return fmt.Errorf("cpu: IL1 miss rate %g", c.IL1MissRate)
	case c.IL1MissCycles < 0:
		return fmt.Errorf("cpu: IL1 miss cost %g", c.IL1MissCycles)
	case c.FetchWidth < 1:
		return fmt.Errorf("cpu: fetch width %d", c.FetchWidth)
	case c.LoadMissOverlap < 0 || c.LoadMissOverlap >= 1:
		return fmt.Errorf("cpu: load overlap %g outside [0,1)", c.LoadMissOverlap)
	case c.StoreMissOverlap < 0 || c.StoreMissOverlap >= 1:
		return fmt.Errorf("cpu: store overlap %g outside [0,1)", c.StoreMissOverlap)
	case c.L1HitCycles <= 0:
		return fmt.Errorf("cpu: L1 hit cycles %g", c.L1HitCycles)
	}
	return nil
}

// Stats are the core's accumulated performance counters.
type Stats struct {
	Instructions  int64
	ComputeCycles float64
	MemCycles     float64 // cycles charged to data accesses (post-overlap)
	BranchCycles  float64 // misprediction penalty cycles
	FetchCycles   float64 // instruction-miss cycles
	Loads, Stores int64
	IL1Accesses   int64
	IL1Misses     float64 // statistical, hence fractional
	SyncEvents    int64
	IdleCycles    float64 // time parked at barriers/locks
	FinishClock   float64
}

// Core is one processor's timing and activity state.
type Core struct {
	ID    int
	cfg   Config
	clock float64
	stats Stats
	// unit activity counters, indexed by floorplan.Unit.
	activity [floorplan.UnitBus + 1]int64
}

// New builds a core.
func New(id int, cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 0 {
		return nil, fmt.Errorf("cpu: negative core id %d", id)
	}
	return &Core{ID: id, cfg: cfg}, nil
}

// Clock returns the core's current absolute cycle.
func (c *Core) Clock() float64 { return c.clock }

// AdvanceTo parks the core until cycle t (barrier/lock wait). Time spent
// parked is recorded as idle.
func (c *Core) AdvanceTo(t float64) {
	if t > c.clock {
		c.stats.IdleCycles += t - c.clock
		c.clock = t
	}
}

// Stats returns a snapshot of the counters with FinishClock filled in.
func (c *Core) Stats() Stats {
	s := c.stats
	s.FinishClock = c.clock
	return s
}

// Activity returns the access count of unit u.
func (c *Core) Activity(u floorplan.Unit) int64 { return c.activity[u] }

// chargeFrontEnd accounts fetch/decode/rename/issue activity and the
// statistical instruction-cache behavior for n instructions.
func (c *Core) chargeFrontEnd(n int, branches int) {
	n64 := int64(n)
	c.activity[floorplan.UnitFetch] += n64
	c.activity[floorplan.UnitRename] += n64
	c.activity[floorplan.UnitWindow] += n64
	c.activity[floorplan.UnitRegfile] += n64
	c.activity[floorplan.UnitBpred] += int64(branches)
	il1 := (n + c.cfg.FetchWidth - 1) / c.cfg.FetchWidth
	c.activity[floorplan.UnitIL1] += int64(il1)
	c.stats.IL1Accesses += int64(il1)
	misses := float64(n) * c.cfg.IL1MissRate
	c.stats.IL1Misses += misses
	fetchStall := misses * c.cfg.IL1MissCycles
	c.stats.FetchCycles += fetchStall
	c.clock += fetchStall
}

// ExecCompute executes a compute burst.
func (c *Core) ExecCompute(ev workload.Event) {
	if ev.Kind != workload.EvCompute || ev.N <= 0 {
		return
	}
	c.chargeFrontEnd(ev.N, ev.Branches)
	ints := ev.N - ev.FP
	if ints < 0 {
		ints = 0
	}
	c.activity[floorplan.UnitIALU] += int64(ints)
	c.activity[floorplan.UnitFALU] += int64(ev.FP)

	cycles := float64(ev.N) / c.cfg.IPCNonMem
	penalty := float64(ev.Branches) * c.cfg.BranchMissRate * c.cfg.BranchPenaltyCycles
	c.stats.ComputeCycles += cycles
	c.stats.BranchCycles += penalty
	c.clock += cycles + penalty
	c.stats.Instructions += int64(ev.N)
}

// ExecMem executes one load or store through the memory system.
func (c *Core) ExecMem(ev workload.Event, ms MemSystem) {
	write := ev.Kind == workload.EvStore
	if !write && ev.Kind != workload.EvLoad {
		return
	}
	c.chargeFrontEnd(1, 0)
	c.activity[floorplan.UnitLSQ]++
	// The hierarchy counts D-cache accesses itself; the core tracks the
	// instruction and the issue slot.
	done := ms.Access(c.ID, ev.Addr, write, c.clock)
	raw := done - c.clock
	if raw < c.cfg.L1HitCycles {
		raw = c.cfg.L1HitCycles
	}
	overlap := c.cfg.LoadMissOverlap
	if write {
		overlap = c.cfg.StoreMissOverlap
	}
	charged := c.cfg.L1HitCycles + (raw-c.cfg.L1HitCycles)*(1-overlap)
	c.stats.MemCycles += charged
	c.clock += charged
	c.stats.Instructions++
	if write {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}
}

// ExecSync charges the local cost of one synchronization instruction
// (barrier arrival, lock acquire/release): a handful of cycles and one
// trip through the front end and integer unit.
func (c *Core) ExecSync(cost float64) {
	c.chargeFrontEnd(1, 0)
	c.activity[floorplan.UnitIALU]++
	c.stats.SyncEvents++
	c.stats.Instructions++
	c.clock += cost
}
