// Package cpu models one Alpha-21264-class processor core at the fidelity
// the paper's evaluation consumes: a 4-wide machine whose compute
// throughput is dependence-limited, whose branches pay a misprediction
// penalty, and whose memory accesses run through the coherent hierarchy
// with partial miss overlap (out-of-order execution and a store buffer
// hide part of the latency).
//
// The model charges time in fractional cycles and counts per-structure
// accesses for the Wattch-style power accounting (internal/power).
package cpu

import (
	"fmt"
	"math/bits"

	"cmppower/internal/floorplan"
	"cmppower/internal/workload"
)

// MemSystem is the interface the core uses to reach the cache hierarchy.
// internal/cache.Hierarchy implements it.
type MemSystem interface {
	// Access performs a data access and returns the completion cycle.
	Access(core int, addr uint64, write bool, now float64) float64
}

// Config holds the core's microarchitectural parameters. Per-application
// fields (IPCNonMem, IL1MissRate) come from the workload model; the rest
// are EV6-class constants.
type Config struct {
	// IssueWidth bounds IPCNonMem (EV6: 4).
	IssueWidth int
	// IPCNonMem is the dependence-limited IPC of non-memory instructions.
	IPCNonMem float64
	// BranchMissRate is the fraction of branches mispredicted.
	BranchMissRate float64
	// BranchPenaltyCycles is the pipeline refill cost per misprediction.
	BranchPenaltyCycles float64
	// IL1MissRate is the instruction-cache miss rate per instruction;
	// each miss costs one L2 round trip (code is L2-resident).
	IL1MissRate float64
	// IL1MissCycles is the cost of one instruction-fetch miss.
	IL1MissCycles float64
	// FetchWidth groups instructions per I-cache access.
	FetchWidth int
	// LoadMissOverlap is the fraction of a load's beyond-L1 latency hidden
	// by out-of-order execution and MLP.
	LoadMissOverlap float64
	// StoreMissOverlap is the fraction of a store's beyond-L1 latency
	// hidden by the store buffer.
	StoreMissOverlap float64
	// L1HitCycles must match the hierarchy's L1 latency; it is the
	// un-hideable part of every access.
	L1HitCycles float64
	// SpeedRatio slows this core relative to the chip's reference clock,
	// in (0, 1]; 0 means 1 (lock-step with the reference). The engine
	// keeps one global clock in reference cycles, so a slower core's
	// local work is dilated by 1/SpeedRatio while beyond-L1 memory
	// latency — set by the uncore, not the core — stays undilated. This
	// is how scenario DVFS domains and little cores enter the engine
	// without a second clock domain.
	SpeedRatio float64
}

// DefaultConfig returns EV6-class constants with a generic workload mix.
func DefaultConfig() Config {
	return Config{
		IssueWidth:          4,
		IPCNonMem:           2.0,
		BranchMissRate:      0.05,
		BranchPenaltyCycles: 7,
		IL1MissRate:         0.001,
		IL1MissCycles:       12,
		FetchWidth:          4,
		LoadMissOverlap:     0.3,
		StoreMissOverlap:    0.8,
		L1HitCycles:         2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.IssueWidth < 1:
		return fmt.Errorf("cpu: issue width %d", c.IssueWidth)
	case c.IPCNonMem <= 0 || c.IPCNonMem > float64(c.IssueWidth):
		return fmt.Errorf("cpu: IPCNonMem %g outside (0, %d]", c.IPCNonMem, c.IssueWidth)
	case c.BranchMissRate < 0 || c.BranchMissRate > 1:
		return fmt.Errorf("cpu: branch miss rate %g", c.BranchMissRate)
	case c.BranchPenaltyCycles < 0:
		return fmt.Errorf("cpu: branch penalty %g", c.BranchPenaltyCycles)
	case c.IL1MissRate < 0 || c.IL1MissRate > 1:
		return fmt.Errorf("cpu: IL1 miss rate %g", c.IL1MissRate)
	case c.IL1MissCycles < 0:
		return fmt.Errorf("cpu: IL1 miss cost %g", c.IL1MissCycles)
	case c.FetchWidth < 1:
		return fmt.Errorf("cpu: fetch width %d", c.FetchWidth)
	case c.LoadMissOverlap < 0 || c.LoadMissOverlap >= 1:
		return fmt.Errorf("cpu: load overlap %g outside [0,1)", c.LoadMissOverlap)
	case c.StoreMissOverlap < 0 || c.StoreMissOverlap >= 1:
		return fmt.Errorf("cpu: store overlap %g outside [0,1)", c.StoreMissOverlap)
	case c.L1HitCycles <= 0:
		return fmt.Errorf("cpu: L1 hit cycles %g", c.L1HitCycles)
	case c.SpeedRatio < 0 || c.SpeedRatio > 1:
		return fmt.Errorf("cpu: speed ratio %g outside (0,1]", c.SpeedRatio)
	}
	return nil
}

// Stats are the core's accumulated performance counters.
type Stats struct {
	Instructions  int64
	ComputeCycles float64
	MemCycles     float64 // cycles charged to data accesses (post-overlap)
	BranchCycles  float64 // misprediction penalty cycles
	FetchCycles   float64 // instruction-miss cycles
	Loads, Stores int64
	IL1Accesses   int64
	IL1Misses     float64 // statistical, hence fractional
	SyncEvents    int64
	IdleCycles    float64 // time parked at barriers/locks
	FinishClock   float64
}

// Core is one processor's timing and activity state.
type Core struct {
	ID    int
	cfg   Config
	clock float64
	stats Stats
	// unit activity counters, indexed by floorplan.Unit.
	activity [floorplan.UnitBus + 1]int64
	// Hot-path constants derived from cfg at construction: the front end
	// is charged once per event, so the per-call division and multiply
	// are precomputed (bit-identically — see chargeFrontEnd).
	fetchShift uint
	fetchPow2  bool
	missStall1 float64 // IL1MissRate * IL1MissCycles * dilate, the n=1 fetch stall
	// dilate is 1/SpeedRatio: core-local charges (compute, branch,
	// fetch stalls, sync, the L1-hit slice of memory) are stretched by
	// it so a half-speed core spends twice the reference cycles on its
	// own work. At SpeedRatio 1 every multiply is ×1.0, which IEEE-754
	// guarantees exact, so homogeneous chips are bit-identical to the
	// pre-dilation model.
	dilate float64
	// hitCharge is L1HitCycles * dilate, the un-hideable local slice of
	// every data access.
	hitCharge float64
	// cycleTab[n] caches float64(n)/IPCNonMem*dilate for short bursts:
	// the same division, performed once at construction, so the
	// per-event cost is a table load instead of an FP divide. Entries
	// are bit-identical to computing on the spot.
	cycleTab [64]float64
}

// New builds a core.
func New(id int, cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 0 {
		return nil, fmt.Errorf("cpu: negative core id %d", id)
	}
	c := &Core{ID: id, cfg: cfg}
	c.fetchPow2 = cfg.FetchWidth&(cfg.FetchWidth-1) == 0
	c.fetchShift = uint(bits.TrailingZeros(uint(cfg.FetchWidth)))
	c.dilate = 1
	if cfg.SpeedRatio != 0 {
		c.dilate = 1 / cfg.SpeedRatio
	}
	c.missStall1 = cfg.IL1MissRate * cfg.IL1MissCycles * c.dilate
	c.hitCharge = cfg.L1HitCycles * c.dilate
	for n := range c.cycleTab {
		c.cycleTab[n] = float64(n) / cfg.IPCNonMem * c.dilate
	}
	return c, nil
}

// Clock returns the core's current absolute cycle.
func (c *Core) Clock() float64 { return c.clock }

// AdvanceTo parks the core until cycle t (barrier/lock wait). Time spent
// parked is recorded as idle.
func (c *Core) AdvanceTo(t float64) {
	if t > c.clock {
		c.stats.IdleCycles += t - c.clock
		c.clock = t
	}
}

// Stats returns a snapshot of the counters with FinishClock filled in.
func (c *Core) Stats() Stats {
	s := c.stats
	s.FinishClock = c.clock
	return s
}

// Activity returns the access count of unit u.
func (c *Core) Activity(u floorplan.Unit) int64 { return c.activity[u] }

// chargeFrontEnd accounts fetch/decode/rename/issue activity and the
// statistical instruction-cache behavior for n instructions.
func (c *Core) chargeFrontEnd(n int, branches int) {
	n64 := int64(n)
	c.activity[floorplan.UnitFetch] += n64
	c.activity[floorplan.UnitRename] += n64
	c.activity[floorplan.UnitWindow] += n64
	c.activity[floorplan.UnitRegfile] += n64
	c.activity[floorplan.UnitBpred] += int64(branches)
	var il1 int
	if c.fetchPow2 {
		il1 = (n + c.cfg.FetchWidth - 1) >> c.fetchShift
	} else {
		il1 = (n + c.cfg.FetchWidth - 1) / c.cfg.FetchWidth
	}
	c.activity[floorplan.UnitIL1] += int64(il1)
	c.stats.IL1Accesses += int64(il1)
	misses := float64(n) * c.cfg.IL1MissRate
	c.stats.IL1Misses += misses
	fetchStall := misses * c.cfg.IL1MissCycles * c.dilate
	c.stats.FetchCycles += fetchStall
	c.clock += fetchStall
}

// chargeFrontEndOne is chargeFrontEnd(1, 0): the memory- and sync-event
// case. One instruction is one I-cache access regardless of fetch width,
// float64(1)*rate is exactly rate, and missStall1 is the same
// rate*IL1MissCycles product — so every counter and the clock move
// bit-identically to the general path.
func (c *Core) chargeFrontEndOne() {
	c.activity[floorplan.UnitFetch]++
	c.activity[floorplan.UnitRename]++
	c.activity[floorplan.UnitWindow]++
	c.activity[floorplan.UnitRegfile]++
	c.activity[floorplan.UnitIL1]++
	c.stats.IL1Accesses++
	c.stats.IL1Misses += c.cfg.IL1MissRate
	c.stats.FetchCycles += c.missStall1
	c.clock += c.missStall1
}

// ExecCompute executes a compute burst.
func (c *Core) ExecCompute(ev workload.Event) {
	if ev.Kind != workload.EvCompute {
		return
	}
	c.ExecComputeBurst(int(ev.N), int(ev.FP), int(ev.Branches))
}

// ExecComputeBurst is ExecCompute without the event envelope: the engine's
// fast path has already dispatched on the kind, so it passes the three
// fields directly instead of copying the whole event through the call.
func (c *Core) ExecComputeBurst(n, fp, branches int) {
	if n <= 0 {
		return
	}
	c.chargeFrontEnd(n, branches)
	ints := n - fp
	if ints < 0 {
		ints = 0
	}
	c.activity[floorplan.UnitIALU] += int64(ints)
	c.activity[floorplan.UnitFALU] += int64(fp)

	var cycles float64
	if n < len(c.cycleTab) {
		cycles = c.cycleTab[n]
	} else {
		cycles = float64(n) / c.cfg.IPCNonMem * c.dilate
	}
	penalty := float64(branches) * c.cfg.BranchMissRate * c.cfg.BranchPenaltyCycles * c.dilate
	c.stats.ComputeCycles += cycles
	c.stats.BranchCycles += penalty
	c.clock += cycles + penalty
	c.stats.Instructions += int64(n)
}

// ExecMem executes one load or store through the memory system.
func (c *Core) ExecMem(ev workload.Event, ms MemSystem) {
	write := ev.Kind == workload.EvStore
	if !write && ev.Kind != workload.EvLoad {
		return
	}
	c.ExecLoadStore(ev.Addr, write, ms)
}

// ExecLoadStore is ExecMem after kind dispatch (see ExecComputeBurst).
func (c *Core) ExecLoadStore(addr uint64, write bool, ms MemSystem) {
	c.chargeFrontEndOne()
	c.activity[floorplan.UnitLSQ]++
	// The hierarchy counts D-cache accesses itself; the core tracks the
	// instruction and the issue slot.
	done := ms.Access(c.ID, addr, write, c.clock)
	raw := done - c.clock
	if raw < c.cfg.L1HitCycles {
		raw = c.cfg.L1HitCycles
	}
	overlap := c.cfg.LoadMissOverlap
	if write {
		overlap = c.cfg.StoreMissOverlap
	}
	// Only the L1-hit slice is local to the core clock; the beyond-L1
	// remainder is uncore latency already expressed in reference cycles.
	charged := c.hitCharge + (raw-c.cfg.L1HitCycles)*(1-overlap)
	c.stats.MemCycles += charged
	c.clock += charged
	c.stats.Instructions++
	if write {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}
}

// ExecSync charges the local cost of one synchronization instruction
// (barrier arrival, lock acquire/release): a handful of cycles and one
// trip through the front end and integer unit.
func (c *Core) ExecSync(cost float64) {
	c.chargeFrontEndOne()
	c.activity[floorplan.UnitIALU]++
	c.stats.SyncEvents++
	c.stats.Instructions++
	c.clock += cost * c.dilate
}
