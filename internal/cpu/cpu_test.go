package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"cmppower/internal/floorplan"
	"cmppower/internal/workload"
)

// fixedMem is a MemSystem returning a constant latency.
type fixedMem struct {
	latency float64
	calls   int
	lastW   bool
}

func (m *fixedMem) Access(core int, addr uint64, write bool, now float64) float64 {
	m.calls++
	m.lastW = write
	return now + m.latency
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.IPCNonMem = 0 },
		func(c *Config) { c.IPCNonMem = 99 },
		func(c *Config) { c.BranchMissRate = -0.1 },
		func(c *Config) { c.BranchMissRate = 1.1 },
		func(c *Config) { c.BranchPenaltyCycles = -1 },
		func(c *Config) { c.IL1MissRate = 2 },
		func(c *Config) { c.IL1MissCycles = -1 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.LoadMissOverlap = 1 },
		func(c *Config) { c.StoreMissOverlap = -0.1 },
		func(c *Config) { c.L1HitCycles = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(-1, DefaultConfig()); err == nil {
		t.Error("accepted negative core id")
	}
	if _, err := New(0, Config{}); err == nil {
		t.Error("accepted zero config")
	}
}

func newCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	c, err := New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExecComputeTiming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPCNonMem = 2
	cfg.IL1MissRate = 0 // isolate
	cfg.BranchMissRate = 0
	c := newCore(t, cfg)
	c.ExecCompute(workload.Event{Kind: workload.EvCompute, N: 100, FP: 30, Branches: 10})
	if got := c.Clock(); math.Abs(got-50) > 1e-9 {
		t.Errorf("clock=%g, want 50 (100 instr at IPC 2)", got)
	}
	st := c.Stats()
	if st.Instructions != 100 {
		t.Errorf("instructions=%d", st.Instructions)
	}
	if got := c.Activity(floorplan.UnitFALU); got != 30 {
		t.Errorf("FALU activity=%d", got)
	}
	if got := c.Activity(floorplan.UnitIALU); got != 70 {
		t.Errorf("IALU activity=%d", got)
	}
	if got := c.Activity(floorplan.UnitBpred); got != 10 {
		t.Errorf("Bpred activity=%d", got)
	}
	if got := c.Activity(floorplan.UnitIL1); got != 25 {
		t.Errorf("IL1 accesses=%d, want 100/4", got)
	}
}

func TestBranchPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPCNonMem = 1
	cfg.IL1MissRate = 0
	cfg.BranchMissRate = 0.5
	cfg.BranchPenaltyCycles = 10
	c := newCore(t, cfg)
	c.ExecCompute(workload.Event{Kind: workload.EvCompute, N: 10, Branches: 4})
	// 10 cycles compute + 4*0.5*10 = 20 penalty.
	if got := c.Clock(); math.Abs(got-30) > 1e-9 {
		t.Errorf("clock=%g, want 30", got)
	}
	if got := c.Stats().BranchCycles; math.Abs(got-20) > 1e-9 {
		t.Errorf("BranchCycles=%g", got)
	}
}

func TestIL1MissCost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPCNonMem = 4
	cfg.BranchMissRate = 0
	cfg.IL1MissRate = 0.01
	cfg.IL1MissCycles = 12
	c := newCore(t, cfg)
	c.ExecCompute(workload.Event{Kind: workload.EvCompute, N: 1000})
	// 250 compute + 1000*0.01*12 = 120 fetch stall.
	if got := c.Clock(); math.Abs(got-370) > 1e-9 {
		t.Errorf("clock=%g, want 370", got)
	}
	if got := c.Stats().IL1Misses; math.Abs(got-10) > 1e-9 {
		t.Errorf("IL1Misses=%g", got)
	}
}

func TestExecComputeIgnoresJunk(t *testing.T) {
	c := newCore(t, DefaultConfig())
	c.ExecCompute(workload.Event{Kind: workload.EvLoad})
	c.ExecCompute(workload.Event{Kind: workload.EvCompute, N: 0})
	if c.Clock() != 0 || c.Stats().Instructions != 0 {
		t.Error("junk events changed state")
	}
}

func TestExecMemHitCost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	c := newCore(t, cfg)
	ms := &fixedMem{latency: 2} // L1 hit
	c.ExecMem(workload.Event{Kind: workload.EvLoad, Addr: 64}, ms)
	if got := c.Clock(); math.Abs(got-2) > 1e-9 {
		t.Errorf("hit cost=%g, want 2", got)
	}
	if ms.calls != 1 {
		t.Errorf("memory calls=%d", ms.calls)
	}
	if c.Stats().Loads != 1 {
		t.Errorf("loads=%d", c.Stats().Loads)
	}
}

func TestExecMemOverlap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	cfg.LoadMissOverlap = 0.5
	cfg.StoreMissOverlap = 0.9
	c := newCore(t, cfg)
	ms := &fixedMem{latency: 102} // 2 + 100 beyond L1
	c.ExecMem(workload.Event{Kind: workload.EvLoad, Addr: 0}, ms)
	// 2 + 100*0.5 = 52.
	if got := c.Clock(); math.Abs(got-52) > 1e-9 {
		t.Errorf("load charge=%g, want 52", got)
	}
	before := c.Clock()
	c.ExecMem(workload.Event{Kind: workload.EvStore, Addr: 0}, ms)
	// 2 + 100*0.1 = 12.
	if got := c.Clock() - before; math.Abs(got-12) > 1e-9 {
		t.Errorf("store charge=%g, want 12", got)
	}
	if !ms.lastW {
		t.Error("store not passed as write")
	}
	if c.Stats().Stores != 1 {
		t.Errorf("stores=%d", c.Stats().Stores)
	}
}

func TestExecMemIgnoresNonMem(t *testing.T) {
	c := newCore(t, DefaultConfig())
	ms := &fixedMem{latency: 2}
	c.ExecMem(workload.Event{Kind: workload.EvBarrier}, ms)
	if ms.calls != 0 || c.Clock() != 0 {
		t.Error("non-memory event reached the hierarchy")
	}
}

func TestExecSyncAndIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	c := newCore(t, cfg)
	c.ExecSync(10)
	if got := c.Clock(); math.Abs(got-10) > 1e-9 {
		t.Errorf("sync cost=%g", got)
	}
	if c.Stats().SyncEvents != 1 || c.Stats().Instructions != 1 {
		t.Error("sync not counted")
	}
	c.AdvanceTo(100)
	if got := c.Stats().IdleCycles; math.Abs(got-90) > 1e-9 {
		t.Errorf("idle=%g, want 90", got)
	}
	// AdvanceTo backwards is a no-op.
	c.AdvanceTo(50)
	if c.Clock() != 100 {
		t.Error("clock moved backwards")
	}
}

func TestStatsFinishClock(t *testing.T) {
	c := newCore(t, DefaultConfig())
	c.ExecSync(5)
	if got := c.Stats().FinishClock; got != c.Clock() {
		t.Errorf("FinishClock=%g, clock=%g", got, c.Clock())
	}
}

func TestSlowMemoryDominatesCPIWhenMemoryBound(t *testing.T) {
	// Sanity link to the paper: with 240-cycle memory and no overlap
	// tuning, a memory-heavy stream's CPI should be dominated by MemCycles.
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	c := newCore(t, cfg)
	ms := &fixedMem{latency: 242}
	for i := 0; i < 100; i++ {
		c.ExecCompute(workload.Event{Kind: workload.EvCompute, N: 4})
		c.ExecMem(workload.Event{Kind: workload.EvLoad, Addr: uint64(i * 64)}, ms)
	}
	st := c.Stats()
	if st.MemCycles < st.ComputeCycles*10 {
		t.Errorf("memory-bound stream: mem %g vs compute %g", st.MemCycles, st.ComputeCycles)
	}
	cpi := c.Clock() / float64(st.Instructions)
	if cpi < 5 {
		t.Errorf("CPI=%g, expected memory-bound CPI >> 1", cpi)
	}
}

// Property: compute-burst timing is exactly N/IPC + branch penalty, and
// front-end activity equals the instruction count, for arbitrary bursts.
func TestQuickComputeAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	f := func(nRaw, brRaw uint16) bool {
		n := 1 + int(nRaw)%10000
		branches := int(brRaw) % (n + 1)
		c, err := New(0, cfg)
		if err != nil {
			return false
		}
		c.ExecCompute(workload.Event{Kind: workload.EvCompute, N: int32(n), Branches: int32(branches)})
		want := float64(n)/cfg.IPCNonMem +
			float64(branches)*cfg.BranchMissRate*cfg.BranchPenaltyCycles
		if math.Abs(c.Clock()-want) > 1e-6*want+1e-9 {
			return false
		}
		return c.Activity(floorplan.UnitFetch) == int64(n) &&
			c.Activity(floorplan.UnitRename) == int64(n) &&
			c.Stats().Instructions == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: memory charge is bounded below by the L1 hit time and above by
// the raw hierarchy latency.
func TestQuickMemChargeBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	f := func(latRaw uint16, write bool) bool {
		lat := 2 + float64(latRaw%1000)
		c, err := New(0, cfg)
		if err != nil {
			return false
		}
		ms := &fixedMem{latency: lat}
		ev := workload.Event{Kind: workload.EvLoad, Addr: 64}
		if write {
			ev.Kind = workload.EvStore
		}
		c.ExecMem(ev, ms)
		charged := c.Clock()
		return charged >= cfg.L1HitCycles-1e-9 && charged <= lat+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpeedRatioDilatesLocalWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IL1MissRate = 0
	cfg.BranchMissRate = 0
	slow := cfg
	slow.SpeedRatio = 0.5
	full := newCore(t, cfg)
	half := newCore(t, slow)
	ev := workload.Event{Kind: workload.EvCompute, N: 100, FP: 0, Branches: 0}
	full.ExecCompute(ev)
	half.ExecCompute(ev)
	if got, want := half.Clock(), 2*full.Clock(); math.Abs(got-want) > 1e-9 {
		t.Errorf("half-speed compute clock=%g, want %g", got, want)
	}

	// Memory: only the L1-hit slice dilates; the beyond-L1 remainder is
	// uncore latency in reference cycles.
	ms := &fixedMem{latency: 100}
	fullM := newCore(t, cfg)
	halfM := newCore(t, slow)
	fullM.ExecLoadStore(0, false, ms)
	halfM.ExecLoadStore(0, false, ms)
	beyond := (100 - cfg.L1HitCycles) * (1 - cfg.LoadMissOverlap)
	wantFull := cfg.L1HitCycles + beyond
	wantHalf := 2*cfg.L1HitCycles + beyond
	if got := fullM.Clock(); math.Abs(got-wantFull) > 1e-9 {
		t.Errorf("full-speed mem clock=%g, want %g", got, wantFull)
	}
	if got := halfM.Clock(); math.Abs(got-wantHalf) > 1e-9 {
		t.Errorf("half-speed mem clock=%g, want %g", got, wantHalf)
	}
}

func TestSpeedRatioOneIsBitIdentical(t *testing.T) {
	// Ratio 1 (and the 0 default) must leave every charge bit-identical
	// to the pre-dilation model: baseline chips may not drift.
	cfg := DefaultConfig()
	one := cfg
	one.SpeedRatio = 1
	a := newCore(t, cfg)
	b := newCore(t, one)
	ms1, ms2 := &fixedMem{latency: 37.5}, &fixedMem{latency: 37.5}
	for i := 0; i < 50; i++ {
		a.ExecComputeBurst(7+i%13, i%3, i%5)
		b.ExecComputeBurst(7+i%13, i%3, i%5)
		a.ExecLoadStore(uint64(i*64), i%2 == 0, ms1)
		b.ExecLoadStore(uint64(i*64), i%2 == 0, ms2)
		a.ExecSync(12)
		b.ExecSync(12)
	}
	if a.Clock() != b.Clock() {
		t.Errorf("ratio-1 clock differs: %v vs %v", a.Clock(), b.Clock())
	}
	if a.Stats() != b.Stats() {
		t.Errorf("ratio-1 stats differ:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func TestSpeedRatioValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpeedRatio = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("accepted speed ratio above 1")
	}
	cfg.SpeedRatio = -0.5
	if err := cfg.Validate(); err == nil {
		t.Error("accepted negative speed ratio")
	}
}
