package identity

import (
	"math"
	"testing"
)

// TestKeyDeterministic pins that equal values give equal keys and that
// field order in the struct (not the caller) controls the encoding.
func TestKeyDeterministic(t *testing.T) {
	type req struct {
		App string `json:"app"`
		N   int    `json:"n"`
	}
	a := Key("/v1/run", &req{App: "FFT", N: 4})
	b := Key("/v1/run", &req{App: "FFT", N: 4})
	if a != b {
		t.Fatalf("equal requests produced different keys: %q vs %q", a, b)
	}
	if want := `/v1/run?{"app":"FFT","n":4}`; a != want {
		t.Fatalf("key %q, want %q", a, want)
	}
	if c := Key("/v1/sweep", &req{App: "FFT", N: 4}); c == a {
		t.Fatal("different paths produced the same key")
	}
	if c := Key("/v1/run", &req{App: "FFT", N: 5}); c == a {
		t.Fatal("different requests produced the same key")
	}
}

// TestHashStable pins the hash function: it is part of the fleet's
// compatibility surface, so a change re-shards every key.
func TestHashStable(t *testing.T) {
	cases := map[string]uint64{
		"":    14695981039346656037,
		"a":   0xaf63dc4c8601ec8c,
		"/v1/run?{\"app\":\"FFT\",\"n\":4}": Hash(`/v1/run?{"app":"FFT","n":4}`),
	}
	for in, want := range cases {
		if got := Hash(in); got != want {
			t.Errorf("Hash(%q) = %#x, want %#x", in, got, want)
		}
	}
	if Hash("FFT") == Hash("LU") {
		t.Error("distinct keys collided")
	}
}

// TestMixSpreads checks the rendezvous score spreads keys roughly evenly
// over slots: with 4 slots and many keys, no slot should own an extreme
// share (the affinity router's load-balance property).
func TestMixSpreads(t *testing.T) {
	const slots = 4
	const keys = 4096
	counts := make([]int, slots)
	buf := []byte("key-000000")
	for i := 0; i < keys; i++ {
		buf[4] = byte('0' + i/100000%10)
		buf[5] = byte('0' + i/10000%10)
		buf[6] = byte('0' + i/1000%10)
		buf[7] = byte('0' + i/100%10)
		buf[8] = byte('0' + i/10%10)
		buf[9] = byte('0' + i%10)
		h := Hash(string(buf))
		best, bestScore := 0, uint64(0)
		for s := 0; s < slots; s++ {
			if sc := Mix(h, uint64(s)); sc >= bestScore {
				best, bestScore = s, sc
			}
		}
		counts[best]++
	}
	mean := float64(keys) / slots
	for s, n := range counts {
		if dev := math.Abs(float64(n)-mean) / mean; dev > 0.15 {
			t.Errorf("slot %d owns %d of %d keys (%.0f%% off the even share)", s, n, keys, dev*100)
		}
	}
}

// TestMixStableUnderMembership checks the rendezvous property this fleet
// depends on: removing one slot only remaps the keys that slot owned —
// every other key keeps its shard, so their memo caches stay hot.
func TestMixStableUnderMembership(t *testing.T) {
	owner := func(h uint64, slots []uint64) uint64 {
		best, bestScore := slots[0], Mix(h, slots[0])
		for _, s := range slots[1:] {
			if sc := Mix(h, s); sc > bestScore {
				best, bestScore = s, sc
			}
		}
		return best
	}
	all := []uint64{0, 1, 2, 3}
	without3 := []uint64{0, 1, 2}
	for i := 0; i < 2048; i++ {
		h := Hash(string(rune(i)) + "-key")
		before := owner(h, all)
		after := owner(h, without3)
		if before != 3 && before != after {
			t.Fatalf("key %d moved from slot %d to %d when slot 3 left", i, before, after)
		}
	}
}
