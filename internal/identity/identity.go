// Package identity defines the client-visible identity of a serving
// request: the canonical key that names "the same computation" across
// every layer of the stack. The server's response cache and singleflight
// coalescing key on it, the experiment memo cache dedupes the simulation
// underneath it, and the fleet router hashes it to pick a backend shard —
// so requests that would coalesce on one server also land on one shard,
// keeping every shard's caches naturally hot (memo-affinity routing).
//
// A key is the endpoint path plus the deterministic JSON encoding of the
// defaults-applied request. encoding/json emits struct fields in
// declaration order and sorts map keys, so two requests meaning the same
// computation produce byte-equal keys.
package identity

import "encoding/json"

// Key derives the canonical identity of a normalized request: endpoint
// path plus the deterministic JSON of the defaults-applied request. The
// caller must normalize (ApplyDefaults) first — the raw wire form of a
// request is not its identity.
func Key(path string, normalized any) string {
	b, err := json.Marshal(normalized)
	if err != nil {
		// Requests are plain data structs; Marshal cannot fail on them.
		panic(err)
	}
	return path + "?" + string(b)
}

// Hash maps a key to a uniform 64-bit value (FNV-1a) for ring placement.
// The function is fixed: changing it re-shards every key, so it is part
// of the fleet's compatibility surface.
func Hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Mix folds a shard slot into a key hash (splitmix64 finalizer over the
// xor), giving the per-(key, slot) score rendezvous hashing ranks shards
// by. Deterministic and stateless: every router instance computes the
// same ranking for the same membership.
func Mix(keyHash, slot uint64) uint64 {
	z := keyHash ^ (slot+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
