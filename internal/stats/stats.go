// Package stats provides the small numeric helpers shared by the power
// accounting, experiment harnesses and reporting code: summary statistics
// and (x, y) series with interpolation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs; all entries must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: geomean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// WeightedMean returns Σ(w·x)/Σw; weights must be non-negative with a
// positive sum.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ws))
	}
	var sw, swx float64
	for i := range xs {
		if ws[i] < 0 {
			return 0, fmt.Errorf("stats: negative weight %g", ws[i])
		}
		sw += ws[i]
		swx += ws[i] * xs[i]
	}
	if sw == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return swx / sw, nil
}

// Series is a sampled function y(x) with strictly increasing x.
type Series struct {
	X, Y []float64
}

// NewSeries validates and wraps the samples.
func NewSeries(x, y []float64) (*Series, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: series length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, errors.New("stats: empty series")
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			return nil, fmt.Errorf("stats: series x not strictly increasing at %d (%g <= %g)", i, x[i], x[i-1])
		}
	}
	return &Series{X: append([]float64(nil), x...), Y: append([]float64(nil), y...)}, nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// At linearly interpolates y(x), clamping outside the sampled range.
func (s *Series) At(x float64) float64 {
	if x <= s.X[0] {
		return s.Y[0]
	}
	n := len(s.X)
	if x >= s.X[n-1] {
		return s.Y[n-1]
	}
	i := sort.SearchFloat64s(s.X, x)
	if s.X[i] == x {
		return s.Y[i]
	}
	w := (x - s.X[i-1]) / (s.X[i] - s.X[i-1])
	return s.Y[i-1] + w*(s.Y[i]-s.Y[i-1])
}

// ArgMax returns the x with the largest y (first on ties).
func (s *Series) ArgMax() (x, y float64) {
	bi := 0
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[bi] {
			bi = i
		}
	}
	return s.X[bi], s.Y[bi]
}

// InvertMonotone finds x in [X[0], X[n-1]] with y(x) == target, assuming y
// is monotone (either direction) under linear interpolation. Returns an
// error if target is outside the series' y range.
func (s *Series) InvertMonotone(target float64) (float64, error) {
	lo, hi := s.X[0], s.X[len(s.X)-1]
	ylo, yhi := s.At(lo), s.At(hi)
	increasing := yhi >= ylo
	yMin, yMax := math.Min(ylo, yhi), math.Max(ylo, yhi)
	if target < yMin-1e-12 || target > yMax+1e-12 {
		return 0, fmt.Errorf("stats: target %g outside series range [%g, %g]", target, yMin, yMax)
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		v := s.At(mid)
		if (v < target) == increasing {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
