package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean=%g", got)
	}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum=%g", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min=%g", got)
	}
	if got := Max(xs); got != 4 {
		t.Errorf("Max=%g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil)=%g", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean=%g, want 4", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("accepted empty")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("accepted zero")
	}
	if _, err := GeoMean([]float64{1, -2}); err == nil {
		t.Error("accepted negative")
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{10, 20}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-17.5) > 1e-12 {
		t.Errorf("WeightedMean=%g, want 17.5", got)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Error("accepted zero total weight")
	}
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := NewSeries(nil, nil); err == nil {
		t.Error("accepted empty")
	}
	if _, err := NewSeries([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Error("accepted non-increasing x")
	}
	if _, err := NewSeries([]float64{2, 1}, []float64{0, 0}); err == nil {
		t.Error("accepted decreasing x")
	}
}

func TestSeriesAt(t *testing.T) {
	s, err := NewSeries([]float64{0, 10, 20}, []float64{0, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {5, 50}, {10, 100}, {15, 50}, {20, 0}, {99, 0},
	}
	for _, c := range cases {
		if got := s.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g)=%g, want %g", c.x, got, c.want)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len=%d", s.Len())
	}
}

func TestSeriesImmutableCopy(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{5, 6}
	s, err := NewSeries(x, y)
	if err != nil {
		t.Fatal(err)
	}
	x[0] = 99
	y[0] = 99
	if s.X[0] != 0 || s.Y[0] != 5 {
		t.Error("series aliases caller slices")
	}
}

func TestArgMax(t *testing.T) {
	s, _ := NewSeries([]float64{1, 2, 3, 4}, []float64{5, 9, 9, 2})
	x, y := s.ArgMax()
	if x != 2 || y != 9 {
		t.Errorf("ArgMax=(%g,%g), want (2,9) first-on-tie", x, y)
	}
}

func TestInvertMonotone(t *testing.T) {
	inc, _ := NewSeries([]float64{0, 1, 2}, []float64{0, 10, 40})
	x, err := inc.InvertMonotone(25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inc.At(x)-25) > 1e-6 {
		t.Errorf("InvertMonotone: y(%g)=%g, want 25", x, inc.At(x))
	}
	dec, _ := NewSeries([]float64{0, 1}, []float64{10, 0})
	x, err = dec.InvertMonotone(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.At(x)-4) > 1e-6 {
		t.Errorf("decreasing invert: y(%g)=%g, want 4", x, dec.At(x))
	}
	if _, err := inc.InvertMonotone(1000); err == nil {
		t.Error("accepted out-of-range target")
	}
	if _, err := inc.InvertMonotone(-5); err == nil {
		t.Error("accepted below-range target")
	}
}

// Property: At is within [min(Y), max(Y)] for any query.
func TestQuickAtBounded(t *testing.T) {
	s, _ := NewSeries([]float64{0, 1, 3, 7}, []float64{2, -1, 5, 0})
	lo, hi := Min(s.Y), Max(s.Y)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := s.At(x)
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Mean is between Min and Max.
func TestQuickMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Map into a bounded range to avoid summation overflow,
				// which is out of scope for this property.
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6*math.Abs(Min(clean))-1e-9 &&
			m <= Max(clean)+1e-6*math.Abs(Max(clean))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStd(t *testing.T) {
	if got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Std=%g, want ≈2.14", got)
	}
	if got := Std([]float64{5}); got != 0 {
		t.Errorf("Std of one sample = %g", got)
	}
	if got := Std(nil); got != 0 {
		t.Errorf("Std(nil)=%g", got)
	}
	if got := Std([]float64{3, 3, 3}); got != 0 {
		t.Errorf("Std of constants = %g", got)
	}
}
