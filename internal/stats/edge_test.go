package stats

import (
	"math"
	"testing"
)

// The reporting and power-accounting layers feed these helpers directly
// from measurement slices that can legitimately be empty (a sweep where
// every app failed) or contain zeros (an idle-power column). This file
// pins the contract at those edges; the nominal paths live in stats_test.go.

func TestGeoMeanEdges(t *testing.T) {
	cases := []struct {
		name    string
		xs      []float64
		want    float64
		wantErr bool
	}{
		{"empty", nil, 0, true},
		{"single", []float64{4}, 4, false},
		{"pair", []float64{2, 8}, 4, false},
		{"contains zero", []float64{1, 0, 4}, 0, true},
		{"contains negative", []float64{1, -2, 4}, 0, true},
		{"all negative", []float64{-1, -2}, 0, true},
		{"tiny positive", []float64{1e-300, 1e-300}, 1e-300, false},
		{"large positive", []float64{1e150, 1e150}, 1e150, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := GeoMean(c.xs)
			if c.wantErr {
				if err == nil {
					t.Fatalf("GeoMean(%v) = %g, want error", c.xs, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("GeoMean(%v): %v", c.xs, err)
			}
			if math.Abs(got-c.want) > 1e-9*c.want {
				t.Fatalf("GeoMean(%v) = %g, want %g", c.xs, got, c.want)
			}
		})
	}
}

func TestWeightedMeanEdges(t *testing.T) {
	cases := []struct {
		name    string
		xs, ws  []float64
		want    float64
		wantErr bool
	}{
		{"length mismatch", []float64{1, 2}, []float64{1}, 0, true},
		{"both empty", nil, nil, 0, true}, // zero total weight
		{"zero weights", []float64{1, 2}, []float64{0, 0}, 0, true},
		{"negative weight", []float64{1, 2}, []float64{1, -1}, 0, true},
		{"one-hot", []float64{3, 7}, []float64{0, 2}, 7, false},
		{"uniform", []float64{1, 2, 3}, []float64{5, 5, 5}, 2, false},
		{"skewed", []float64{0, 10}, []float64{3, 1}, 2.5, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := WeightedMean(c.xs, c.ws)
			if c.wantErr {
				if err == nil {
					t.Fatalf("WeightedMean(%v, %v) = %g, want error", c.xs, c.ws, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("WeightedMean(%v, %v): %v", c.xs, c.ws, err)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("WeightedMean(%v, %v) = %g, want %g", c.xs, c.ws, got, c.want)
			}
		})
	}
}

func TestEmptySliceSummaries(t *testing.T) {
	// Min/Max return the identity of their fold so callers can keep folding;
	// Mean/Sum/Std return 0. All four must be safe on nil.
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %g, want +Inf", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %g, want -Inf", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %g, want 0", got)
	}
	if got := Std(nil); got != 0 {
		t.Errorf("Std(nil) = %g, want 0", got)
	}
	if got := Std([]float64{5}); got != 0 {
		t.Errorf("Std(single) = %g, want 0 (sample std undefined)", got)
	}
}

func TestSeriesEdges(t *testing.T) {
	if _, err := NewSeries([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Error("NewSeries accepted non-increasing x")
	}
	if _, err := NewSeries([]float64{1, 2}, []float64{0}); err == nil {
		t.Error("NewSeries accepted mismatched lengths")
	}
	if _, err := NewSeries(nil, nil); err == nil {
		t.Error("NewSeries accepted an empty series")
	}
	s, err := NewSeries([]float64{1, 2, 4}, []float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	// Clamping outside the sampled range, exact hits on sample points.
	for _, c := range []struct{ x, want float64 }{
		{0, 10}, {1, 10}, {2, 20}, {3, 30}, {4, 40}, {100, 40},
	} {
		if got := s.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if _, err := s.InvertMonotone(50); err == nil {
		t.Error("InvertMonotone accepted a target above the y range")
	}
	x, err := s.InvertMonotone(30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 1e-6 {
		t.Errorf("InvertMonotone(30) = %g, want 3", x)
	}
}
